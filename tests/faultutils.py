"""Fault-injection harness for the concurrent runtimes.

The runtime exposes one test seam: ``repro.pipeline.runtime._channel_hook``
wraps every worker-side channel object (thread queues, shared-memory
rings, socket transports) before the worker uses it.  This module provides
the wrapper: a :class:`FaultSpec` of :class:`FaultRule` entries that fire
at exact ``(worker, op, kind, edge, microbatch, step)`` coordinates —
dropping a payload, delaying it, duplicating it with a stale step tag,
severing the socket under it, or killing the worker outright — so every
failure path the driver claims to handle can be triggered deterministically
and asserted on.

With the default ``fork`` start method, process and socket workers inherit
the installed hook (and their own copy of the rules) through the fork, so
the same spec drives all three backends.  Because each forked worker
mutates its *own* rule counters, rules should pin ``worker=`` so exactly
one process fires them; a respawned worker generation forks fresh counters
from the driver's pristine copy, which is why rules should also pin
``step=`` (the driver's global step sequence, 1-based) — a retried
sequence number is never reused, so a pinned rule cannot re-fire after a
respawn.

Usage::

    spec = FaultSpec([FaultRule(op="send", action="drop", worker=1,
                                kind="act", step=2)])
    monkeypatch.setattr(runtime, "_channel_hook", spec.wrap)
    # ... build the runtime (fork inherits the hook), run steps ...
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.pipeline.transport import TransportClosed


class FaultInjected(RuntimeError):
    """Raised inside a worker by a ``die`` rule on the thread backend (a
    thread cannot be killed the way a process can); surfaces to the driver
    through the ordinary worker-error path."""


@dataclass
class FaultRule:
    """One injected fault.  ``op`` is the channel operation to intercept
    ("send" or "recv"); ``action`` is what to do when every filter matches:

    ``drop``
        swallow the payload (send) — the peer starves into its channel
        timeout and reports a deadlock.
    ``delay``
        sleep ``delay`` seconds, then perform the operation normally —
        must be absorbed bit-exactly.
    ``dup``
        send twice, the first copy tagged with the *previous* step
        sequence — exercises the stale-tag discard on ring and socket
        channels (thread queues are untagged; do not use dup there).
    ``disconnect``
        close the underlying socket for this channel, then attempt the
        send — raises ``TransportClosed`` in the worker (socket only).
    ``die``
        kill the worker at this exact point: ``os._exit(13)`` for process
        and socket workers, :class:`FaultInjected` for thread workers.

    ``None`` filters match anything.  ``step`` is the driver's global step
    sequence (1-based); ``microbatch`` the wave index the operation happens
    under.  A rule fires at most ``count`` times per process.
    """

    op: str
    action: str
    worker: int | None = None
    kind: str | None = None
    edge: int | None = None
    microbatch: int | None = None
    step: int | None = None
    delay: float = 0.05
    count: int = 1
    fired: int = 0


class FaultSpec:
    """A set of rules plus the ``_channel_hook`` adapter installing them."""

    def __init__(self, rules: list[FaultRule]):
        self.rules = rules
        # Thread channels are built fresh per step and carry no step tag;
        # wrap order per worker tracks the driver's issue sequence exactly.
        self._wraps_per_worker: dict[int, int] = {}

    def wrap(self, chans, w: int):
        seq = self._wraps_per_worker.get(w, 0) + 1
        self._wraps_per_worker[w] = seq
        return FaultyChannels(chans, w, self.rules, seq)


class FaultyChannels:
    """Channel proxy applying :class:`FaultRule` actions to send/recv.

    ``can_reserve`` is pinned False so ``_execute_program`` always takes
    the copying send path — in-ring reserve/commit would bypass ``send()``
    and with it every interception point.  The proxy otherwise forwards the
    full channel surface to the wrapped object.
    """

    can_reserve = False

    def __init__(self, inner, w: int, rules: list[FaultRule], wrap_seq: int):
        self._inner = inner
        self._w = w
        self._rules = rules
        self._wrap_seq = wrap_seq
        self._wave = None

    # -- coordinates -----------------------------------------------------------
    @property
    def step(self):
        return self._inner.step

    @step.setter
    def step(self, value):
        self._inner.step = value

    def _seq(self) -> int:
        # Ring/socket channels carry the driver's step tag; thread channels
        # exist for exactly one step, identified at wrap time.
        return getattr(self._inner, "step", None) or self._wrap_seq

    def _thread_backend(self) -> bool:
        return not hasattr(self._inner, "step")

    def _fire(self, op: str, kind: str, edge: int) -> FaultRule | None:
        for rule in self._rules:
            if rule.op != op or rule.fired >= rule.count:
                continue
            if rule.worker is not None and rule.worker != self._w:
                continue
            if rule.kind is not None and rule.kind != kind:
                continue
            if rule.edge is not None and rule.edge != edge:
                continue
            if rule.step is not None and rule.step != self._seq():
                continue
            if rule.microbatch is not None and rule.microbatch != self._wave:
                continue
            rule.fired += 1
            return rule
        return None

    def _die(self):
        if self._thread_backend():
            raise FaultInjected(
                f"injected worker death on worker {self._w} at step {self._seq()}"
            )
        os._exit(13)

    # -- intercepted operations ------------------------------------------------
    def send(self, kind: str, edge: int, payload) -> None:
        rule = self._fire("send", kind, edge)
        if rule is None:
            return self._inner.send(kind, edge, payload)
        if rule.action == "drop":
            return None
        if rule.action == "delay":
            time.sleep(rule.delay)
            return self._inner.send(kind, edge, payload)
        if rule.action == "dup":
            # Stale-tagged duplicate: receivers must discard it and deliver
            # only the real copy, keeping the step bit-exact.
            self._inner.step -= 1
            try:
                self._inner.send(kind, edge, payload)
            finally:
                self._inner.step += 1
            return self._inner.send(kind, edge, payload)
        if rule.action == "disconnect":
            if hasattr(self._inner, "disconnect"):
                self._inner.disconnect(kind, edge)
                return self._inner.send(kind, edge, payload)  # raises
            raise TransportClosed(
                f"injected disconnect of ({kind}, {edge}) on worker {self._w}"
            )
        if rule.action == "die":
            self._die()
        raise ValueError(f"unknown fault action {rule.action!r}")

    def recv(self, kind: str, edge: int):
        rule = self._fire("recv", kind, edge)
        if rule is not None:
            if rule.action == "delay":
                time.sleep(rule.delay)
            elif rule.action == "die":
                self._die()
            else:
                raise ValueError(
                    f"fault action {rule.action!r} is not supported on recv"
                )
        return self._inner.recv(kind, edge)

    # -- forwarded surface -----------------------------------------------------
    def reserve(self, kind: str, edge: int, shape, dtype):
        return None  # can_reserve is False; nothing may pin ring slots

    def begin_wave(self, j: int) -> None:
        self._wave = j
        self._inner.begin_wave(j)

    def release_wave(self, j: int) -> None:
        self._inner.release_wave(j)

    def release_all(self) -> None:
        self._inner.release_all()

    def __getattr__(self, name):
        # xfer_seconds, close, disconnect, ... — whatever the wrapped
        # backend's channel set offers.
        return getattr(self._inner, name)
