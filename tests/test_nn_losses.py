"""Loss module tests: values and gradients."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, MSELoss, SequenceCrossEntropyLoss
from tests.helpers import check_input_grad


class TestCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 8))
        y = np.array([0, 1, 2, 3])
        assert loss(logits, y) == pytest.approx(np.log(8))

    def test_perfect_prediction_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        assert loss(logits, np.array([1, 2])) == pytest.approx(0.0, abs=1e-8)

    def test_gradient_matches_numeric(self, rng, rng2):
        loss = CrossEntropyLoss(label_smoothing=0.1)
        logits = rng.normal(size=(3, 5))
        y = np.array([0, 2, 4])
        loss(logits, y)
        g = loss.backward()
        check_input_grad(lambda l: loss(l, y), logits, g, rng2)

    def test_label_smoothing_raises_floor(self):
        plain = CrossEntropyLoss()
        smooth = CrossEntropyLoss(label_smoothing=0.2)
        logits = np.full((1, 4), -50.0)
        logits[0, 0] = 50.0
        y = np.array([0])
        assert smooth(logits, y) > plain(logits, y)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)

    def test_rejects_3d_logits(self, rng):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(rng.normal(size=(2, 3, 4)), np.zeros(2, dtype=int))

    def test_grad_sums_to_zero_per_row(self, rng):
        """softmax-CE gradient rows sum to zero (prob simplex tangent)."""
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(4, 6))
        loss(logits, np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(loss.backward().sum(axis=1), 0.0, atol=1e-12)


class TestSequenceCrossEntropy:
    def test_ignores_padding(self, rng):
        loss = SequenceCrossEntropyLoss(pad_id=0)
        logits = rng.normal(size=(1, 4, 6))
        targets = np.array([[3, 2, 0, 0]])
        val = loss(logits, targets)
        # changing logits at padded positions must not change the loss
        logits2 = logits.copy()
        logits2[0, 2:] += 5.0
        assert loss(logits2, targets) == pytest.approx(val)

    def test_grad_zero_at_padding(self, rng):
        loss = SequenceCrossEntropyLoss(pad_id=0)
        logits = rng.normal(size=(1, 4, 6))
        targets = np.array([[3, 2, 0, 0]])
        loss(logits, targets)
        g = loss.backward()
        np.testing.assert_allclose(g[0, 2:], 0.0)
        assert np.abs(g[0, :2]).max() > 0

    def test_gradient_matches_numeric(self, rng, rng2):
        loss = SequenceCrossEntropyLoss(pad_id=0, label_smoothing=0.1)
        logits = rng.normal(size=(2, 3, 5))
        targets = np.array([[3, 2, 0], [1, 4, 2]])
        loss(logits, targets)
        g = loss.backward()
        check_input_grad(lambda l: loss(l, targets), logits, g, rng2)

    def test_all_padding_raises(self, rng):
        loss = SequenceCrossEntropyLoss(pad_id=0)
        with pytest.raises(ValueError):
            loss(rng.normal(size=(1, 2, 4)), np.zeros((1, 2), dtype=int))

    def test_mean_over_tokens_not_batch(self, rng):
        """Loss normalizes by token count so ragged batches compare fairly."""
        loss = SequenceCrossEntropyLoss(pad_id=0)
        logits = np.zeros((1, 2, 4))
        t1 = loss(logits, np.array([[1, 2]]))
        t2 = loss(np.zeros((1, 4, 4)), np.array([[1, 2, 3, 1]]))
        assert t1 == pytest.approx(t2)


class TestMSE:
    def test_zero_at_match(self, rng):
        x = rng.normal(size=(3, 2))
        assert MSELoss()(x, x.copy()) == 0.0

    def test_value(self):
        assert MSELoss()(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(2.5)

    def test_gradient_matches_numeric(self, rng, rng2):
        loss = MSELoss()
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        loss(pred, target)
        g = loss.backward()
        check_input_grad(lambda p: loss(p, target), pred, g, rng2)

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            MSELoss()(rng.normal(size=(2, 2)), rng.normal(size=(2, 3)))
