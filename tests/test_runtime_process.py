"""Differential tests: the multi-process shared-memory runtime must be
bit-for-bit identical to the sequential simulator.

Same contract as ``tests/test_runtime_equivalence.py`` for the thread
backend, plus the process-specific machinery: spec-based worker
construction (nothing live crosses the fork/spawn boundary), the shared
weight mirror, the gradient mailbox, persistent-state (BatchNorm running
stats) sync back to the driver, and the error/deadlock paths.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.models import MLP
from repro.models.resnet import resnet_tiny
from repro.nn import CrossEntropyLoss, GELU, Embedding, Linear, Sequential
from repro.optim import SGD, AdamW
from repro.pipeline import (
    AsyncPipelineRuntime,
    ModelSpec,
    PipelineDeadlockError,
    PipelineExecutor,
    RuntimeWedgedError,
    make_backend,
    partition_model,
)
from repro.pipeline.executor import param_groups_from_stages

TIMEOUT = 15.0  # deadlock timeout for every runtime in this file


def toy_classification(rng, d=6, c=3, n=96):
    centers = rng.normal(size=(c, d)) * 2
    y = rng.integers(0, c, size=n)
    x = centers[y] + rng.normal(size=(n, d))
    return x, y


def build_mlp_backend(cls, method, *, num_stages, num_microbatches, cfg=None,
                      seed=7, lr=0.05, momentum=0.9, dims=(6, 8, 8, 8, 3), **kw):
    model = MLP(list(dims), np.random.default_rng(seed))
    stages = partition_model(model, num_stages)
    opt = SGD(param_groups_from_stages(stages), lr=lr, momentum=momentum)
    backend = cls(
        model, CrossEntropyLoss(), opt, stages, num_microbatches, method,
        pipemare=cfg, **kw,
    )
    return model, backend


def build_process_backend(method, **kw):
    kw.setdefault("deadlock_timeout", TIMEOUT)
    return build_mlp_backend(AsyncPipelineRuntime, method, backend="process", **kw)


def assert_equivalent(m1, ex, m2, rt, x, y, steps=6, batch=16):
    for i in range(steps):
        b = slice((i * batch) % (len(x) - batch + 1), (i * batch) % (len(x) - batch + 1) + batch)
        l1 = ex.train_step(x[b], y[b])
        l2 = rt.train_step(x[b], y[b])
        assert l1 == l2, f"step {i}: simulator loss {l1!r} != process loss {l2!r}"
    if hasattr(rt, "sync"):
        rt.sync()  # settle a pending overlapped boundary before comparing
    for p1, p2 in zip(m1.parameters(), m2.parameters()):
        np.testing.assert_array_equal(p1.data, p2.data)


# The same differential grid the thread backend must pass:
# method × stages × microbatches × technique/recompute.
TECHNIQUES = {
    "plain": dict(cfg=None, kw={}),
    "t1": dict(cfg=PipeMareConfig.t1_only(anneal_steps=50), kw={}),
    "t2": dict(cfg=PipeMareConfig.t2_only(decay=0.5), kw={}),
    "t1t2": dict(cfg=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5), kw={}),
    "t3": dict(
        cfg=PipeMareConfig.full(anneal_steps=50, warmup_steps=2, decay=0.5), kw={}
    ),
    "recompute": dict(
        cfg=PipeMareConfig.t2_only(decay=0.5), kw={"recompute_segment": 2}
    ),
}


class TestDifferentialGrid:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    @pytest.mark.parametrize("num_stages,num_microbatches", [(2, 2), (4, 2), (4, 4), (3, 4)])
    def test_methods_match_bitwise(self, rng, method, num_stages, num_microbatches):
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(
            PipelineExecutor, method,
            num_stages=num_stages, num_microbatches=num_microbatches,
        )
        m2, rt = build_process_backend(
            method, num_stages=num_stages, num_microbatches=num_microbatches,
        )
        with rt:
            assert rt.num_workers == num_stages
            assert rt.pool.kind == "process"
            assert_equivalent(m1, ex, m2, rt, x, y)

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    def test_pipemare_techniques_match_bitwise(self, rng, technique):
        x, y = toy_classification(rng)
        spec = TECHNIQUES[technique]
        m1, ex = build_mlp_backend(
            PipelineExecutor, "pipemare", num_stages=4, num_microbatches=2,
            cfg=spec["cfg"], **spec["kw"],
        )
        m2, rt = build_process_backend(
            "pipemare", num_stages=4, num_microbatches=2,
            cfg=spec["cfg"], **spec["kw"],
        )
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y, steps=8)

    @pytest.mark.timeout(120)
    def test_ragged_microbatches_match(self, rng):
        """10 samples into 4 microbatches: the per-microbatch grad weighting
        must agree across backends."""
        x, y = toy_classification(rng, n=10)
        m1, ex = build_mlp_backend(PipelineExecutor, "pipemare", num_stages=4, num_microbatches=4)
        m2, rt = build_process_backend("pipemare", num_stages=4, num_microbatches=4)
        with rt:
            for _ in range(4):
                assert ex.train_step(x, y) == rt.train_step(x, y)
            rt.sync()
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)

    @pytest.mark.timeout(120)
    def test_adamw_backend_matches(self, rng):
        """Optimizer state (moments) must evolve identically too — the
        optimizer consumes mailbox-copied gradients on the driver."""
        x, y = toy_classification(rng)
        models, backends = [], []
        for cls, kw in (
            (PipelineExecutor, {}),
            (AsyncPipelineRuntime, {"backend": "process", "deadlock_timeout": TIMEOUT}),
        ):
            model = MLP([6, 8, 8, 3], np.random.default_rng(3))
            stages = partition_model(model, 3)
            opt = AdamW(param_groups_from_stages(stages), lr=0.01, weight_decay=0.01)
            backends.append(cls(model, CrossEntropyLoss(), opt, stages, 2, "pipemare", **kw))
            models.append(model)
        m1, m2 = models
        ex, rt = backends
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y)


class TestModelsAndState:
    @pytest.mark.timeout(180)
    def test_resnet_batchnorm_matches_and_syncs_running_stats(self, rng):
        """ResNet at stages=8 splits residual blocks across stage boundaries
        (fewer workers than stages), BatchNorm emits transposed NCHW
        intermediates (the transport must preserve memory layout for bit
        equality), and its running statistics mutate inside the workers —
        they must land back in the driver's model for evaluation."""
        x = rng.normal(size=(16, 3, 8, 8))
        y = rng.integers(0, 10, size=16)
        models, backends = [], []
        for cls, kw in (
            (PipelineExecutor, {}),
            (AsyncPipelineRuntime, {"backend": "process", "deadlock_timeout": TIMEOUT}),
        ):
            model = resnet_tiny(np.random.default_rng(1), norm="batch")
            stages = partition_model(model, 8)
            opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
            backends.append(cls(model, CrossEntropyLoss(), opt, stages, 4, "pipemare", **kw))
            models.append(model)
        ex, rt = backends
        with rt:
            assert rt.num_workers < 8
            for _ in range(3):
                assert ex.train_step(x, y) == rt.train_step(x, y)
            rt.sync()
            for p1, p2 in zip(models[0].parameters(), models[1].parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)
            for m_sim, m_proc in zip(models[0].modules(), models[1].modules()):
                for name, value in m_sim.__dict__.items():
                    if (
                        not name.startswith("_")
                        and isinstance(value, np.ndarray)
                        and name not in m_sim._parameters
                    ):
                        np.testing.assert_array_equal(
                            value, m_proc.__dict__[name],
                            err_msg=f"{type(m_sim).__name__}.{name} not synced",
                        )

    @pytest.mark.timeout(180)
    def test_factory_spec_workers_seeded_with_driver_persistent_state(self, rng):
        """A factory-string spec rebuilds a *fresh* replica in each worker;
        its pristine BatchNorm running stats must be seeded from the
        driver's (possibly already-evolved) state at startup, not allowed to
        clobber them on the first sync back."""
        x = rng.normal(size=(16, 3, 8, 8))
        y = rng.integers(0, 10, size=16)
        models, backends = [], []
        for which in ("sim", "proc"):
            model = resnet_tiny(np.random.default_rng(1), norm="batch")
            model(x)  # evolve running stats before the runtime exists
            stages = partition_model(model, 4)
            opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
            if which == "sim":
                be = PipelineExecutor(model, CrossEntropyLoss(), opt, stages, 4, "pipemare")
            else:
                spec = ModelSpec(
                    "repro.models.resnet:resnet_tiny",
                    args=(np.random.default_rng(1),), kwargs={"norm": "batch"},
                    num_stages=4,
                )
                be = AsyncPipelineRuntime(
                    model, CrossEntropyLoss(), opt, stages, 4, "pipemare",
                    backend="process", deadlock_timeout=TIMEOUT, model_spec=spec,
                )
            models.append(model)
            backends.append(be)
        ex, rt = backends
        with rt:
            for _ in range(2):
                assert ex.train_step(x, y) == rt.train_step(x, y)
            rt.sync()  # persistent state syncs back when a step is collected
            for m_sim, m_proc in zip(models[0].modules(), models[1].modules()):
                for name, value in m_sim.__dict__.items():
                    if (
                        not name.startswith("_")
                        and isinstance(value, np.ndarray)
                        and name not in m_sim._parameters
                    ):
                        np.testing.assert_array_equal(
                            value, m_proc.__dict__[name], err_msg=name
                        )

    @pytest.mark.timeout(120)
    def test_embedding_stack_cache_matches(self, rng):
        """Integer token inputs cross the rings; Embedding's in-place cache
        mutation exercises the snapshot/restore machinery inside a worker
        process."""
        vocab, d = 11, 8
        x = rng.integers(0, vocab, size=(48,))
        y = rng.integers(0, 3, size=48)
        models, backends = [], []
        for cls, kw in (
            (PipelineExecutor, {}),
            (AsyncPipelineRuntime, {"backend": "process", "deadlock_timeout": TIMEOUT}),
        ):
            r = np.random.default_rng(13)
            model = Sequential(
                Embedding(vocab, d, r), Linear(d, d, r), GELU(), Linear(d, 3, r)
            )
            stages = partition_model(model, 3)
            opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
            backends.append(cls(model, CrossEntropyLoss(), opt, stages, 4, "pipemare", **kw))
            models.append(model)
        ex, rt = backends
        with rt:
            for i in range(5):
                b = slice(i * 8, i * 8 + 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])
            rt.sync()
            for p1, p2 in zip(models[0].parameters(), models[1].parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)


class TestSpecConstruction:
    @pytest.mark.timeout(120)
    def test_string_factory_spec(self, rng):
        """Workers rebuild the model from an import-path factory spec — no
        live objects cross the process boundary."""
        x, y = toy_classification(rng)
        spec = ModelSpec(
            "repro.models.mlp:MLP",
            args=([6, 8, 8, 8, 3], np.random.default_rng(7)),
            num_stages=4,
        )
        m1, ex = build_mlp_backend(PipelineExecutor, "pipemare", num_stages=4, num_microbatches=2)
        m2, rt = build_process_backend(
            "pipemare", num_stages=4, num_microbatches=2, model_spec=spec,
        )
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y, steps=4)

    @pytest.mark.timeout(240)
    def test_spawn_start_method(self, rng):
        """The spec machinery must survive a cold interpreter: spawn ships
        only picklable state and the worker imports/rebuilds everything."""
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(PipelineExecutor, "pipemare", num_stages=2, num_microbatches=2)
        m2, rt = build_process_backend(
            "pipemare", num_stages=2, num_microbatches=2,
            start_method="spawn", deadlock_timeout=60.0,
        )
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y, steps=3)

    @pytest.mark.timeout(120)
    def test_mismatched_spec_rejected_at_construction(self, rng):
        """A spec that rebuilds a different partition than the driver's must
        fail loudly at startup, not train silently wrong."""
        spec = ModelSpec(
            "repro.models.mlp:MLP",
            args=([6, 8, 3], np.random.default_rng(7)),  # wrong architecture
            num_stages=2,
        )
        with pytest.raises(Exception, match="partition|names|differ"):
            build_process_backend(
                "pipemare", num_stages=2, num_microbatches=2,
                dims=(6, 8, 8, 3), model_spec=spec,
            )


class TestRuntimeContract:
    @pytest.mark.timeout(120)
    def test_checkpoint_roundtrip_from_simulator(self, rng):
        """A simulator checkpoint restored into the process runtime resyncs
        the shared mirror (version window + velocities) and continues the
        exact same trajectory."""
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(PipelineExecutor, "pipemare", num_stages=4, num_microbatches=2)
        for i in range(3):
            ex.train_step(x[i * 16:(i + 1) * 16], y[i * 16:(i + 1) * 16])
        state = ex.state_dict()
        opt_state = ex.optimizer.state_dict()

        m2, rt = build_process_backend("pipemare", num_stages=4, num_microbatches=2)
        with rt:
            m2.load_state_dict(m1.state_dict())
            rt.optimizer.load_state_dict(opt_state)
            rt.load_state_dict(state)
            assert rt.t == ex.t
            for i in range(3, 6):
                b = slice((i * 16) % 80, (i * 16) % 80 + 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])

    @pytest.mark.timeout(120)
    def test_latest_weights_live_after_step(self, rng):
        """Eval between steps must see version t on the driver — the
        optimizer and weight store live driver-side, exactly as with the
        thread backend."""
        x, y = toy_classification(rng)
        m, rt = build_process_backend("pipemare", num_stages=4, num_microbatches=2)
        with rt:
            rt.train_step(x[:16], y[:16])
            rt.sync()  # with the overlapped boundary, eval points read via sync()
            for s, stage in enumerate(rt.stages):
                for p, stored in zip(stage.params, rt.store.weights(s, rt.store.latest_version)):
                    assert p.data is stored

    @pytest.mark.timeout(120)
    def test_make_backend_dispatch(self, rng):
        x, y = toy_classification(rng)
        model = MLP([6, 8, 3], np.random.default_rng(0))
        stages = partition_model(model, 2)
        opt = SGD(param_groups_from_stages(stages), lr=0.05)
        rt = make_backend(
            "process", model, CrossEntropyLoss(), opt, stages, 2, "pipemare",
            deadlock_timeout=TIMEOUT,
        )
        try:
            assert isinstance(rt, AsyncPipelineRuntime)
            assert rt.backend == "process"
            rt.train_step(x[:16], y[:16])
        finally:
            rt.close()

    @pytest.mark.timeout(120)
    def test_closed_runtime_rejects_steps(self, rng):
        x, y = toy_classification(rng)
        m, rt = build_process_backend("pipemare", num_stages=2, num_microbatches=2)
        rt.close()
        rt.close()  # idempotent
        with pytest.raises(RuntimeError):
            rt.train_step(x[:16], y[:16])


class TestErrorPaths:
    @pytest.mark.timeout(120)
    def test_worker_exception_restores_latest_weights_and_stays_usable(self, rng):
        """A worker exception mid-step must leave the driver's parameters on
        the latest version, commit no stats, and keep the runtime usable —
        the next good step still matches the simulator bit for bit."""
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(PipelineExecutor, "pipemare", num_stages=4, num_microbatches=2)
        m2, rt = build_process_backend("pipemare", num_stages=4, num_microbatches=2)
        with rt:
            assert ex.train_step(x[:16], y[:16]) == rt.train_step(x[:16], y[:16])
            with pytest.raises(Exception):
                rt.train_step(x[:16, :4], y[:16])  # wrong feature dim
            for s, stage in enumerate(rt.stages):
                for p, stored in zip(
                    stage.params, rt.store.weights(s, rt.store.latest_version)
                ):
                    assert p.data is stored, "error left delayed weights live"
            assert rt.stats.steps == 1, "aborted step must not commit stats"
            assert ex.train_step(x[16:32], y[16:32]) == rt.train_step(x[16:32], y[16:32])
            rt.sync()
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)

    @pytest.mark.timeout(120)
    def test_killed_worker_wedges_and_close_joins(self, rng):
        """A worker killed between steps surfaces as PipelineDeadlockError,
        the runtime wedges explicitly, and close() returns promptly."""
        x, y = toy_classification(rng)
        m, rt = build_process_backend(
            "pipemare", num_stages=2, num_microbatches=2, done_grace=2.0,
        )
        rt.train_step(x[:16], y[:16])
        rt.pool._procs[1].terminate()
        rt.pool._procs[1].join(timeout=5.0)
        with pytest.raises(PipelineDeadlockError):
            rt.train_step(x[:16], y[:16])
        with pytest.raises(RuntimeWedgedError, match="wedged"):
            rt.train_step(x[:16], y[:16])
        t0 = time.perf_counter()
        rt.close()
        assert time.perf_counter() - t0 < 10.0

    @pytest.mark.timeout(120)
    def test_training_dropout_rejected(self, rng):
        from repro.nn import Dropout

        model = Sequential(
            Linear(6, 8, np.random.default_rng(0)),
            Dropout(0.5, np.random.default_rng(1)),
            Linear(8, 3, np.random.default_rng(2)),
        )
        stages = partition_model(model, 2)
        opt = SGD(param_groups_from_stages(stages), lr=0.05)
        with pytest.raises(ValueError, match="Dropout"):
            AsyncPipelineRuntime(
                model, CrossEntropyLoss(), opt, stages, 2, "pipemare",
                backend="process",
            )
