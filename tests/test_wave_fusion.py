"""Fused wave programs: the compiled per-worker command blocks must change
*only* the scheduler hand-off granularity, never the computation.

Three layers of evidence:

* **Compiler unit tests** — :func:`compile_blocks` on synthetic
  :class:`WaveInfo` sequences pins down every boundary rule: fusion off
  yields singleton blocks, a rising gate (a wave requiring a *newer*
  version than the block entry gate) always breaks, flat/older gates fuse,
  a cross-worker producer gated newer than the entry breaks, and load
  dedup skips re-pointing only between equal signatures inside one block.
  The optimizer boundary needs no rule — programs are compiled per step,
  and the tiling test checks blocks partition exactly one step's waves.
* **Affine exactness** — the compiled ``max(0, t - d)`` gates are replayed
  against the resolver's per-wave ``wave_gate_version`` over a minibatch
  grid for every method/sync flag: each wave's gate matches its compiled
  delay exactly, and every block's entry gate dominates (is at least as
  new as) every member wave's requirement — the property that makes one
  entry wait equivalent to the per-wave gates.
* **Differential grids** — fused and unfused runtimes versus the
  sequential simulator, bit-for-bit on per-step losses and final weights,
  across methods × techniques × backends (thread / process / socket) ×
  overlap on/off × replicas ∈ {1, 2}; alongside, ``commands_per_step``
  must actually collapse (≥ 2× on the 4-stage MLP row — the tax the
  optimisation exists to kill).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.pipeline import (
    AsyncPipelineRuntime,
    PipelineExecutor,
    WaveCompileError,
    partition_model,
)
from repro.pipeline.executor import param_groups_from_stages
from repro.pipeline.waveprogram import (
    WaveInfo,
    _affine_delay,
    compile_blocks,
)

TIMEOUT = 15.0  # deadlock timeout for every concurrent runtime in this file


def toy_classification(rng, d=6, c=3, n=96):
    centers = rng.normal(size=(c, d)) * 2
    y = rng.integers(0, c, size=n)
    x = centers[y] + rng.normal(size=(n, d))
    return x, y


def build_mlp_backend(cls, method, *, num_stages=4, num_microbatches=2, cfg=None,
                      seed=7, dims=(6, 8, 8, 8, 3), **kw):
    model = MLP(list(dims), np.random.default_rng(seed))
    stages = partition_model(model, num_stages)
    opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
    backend = cls(
        model, CrossEntropyLoss(), opt, stages, num_microbatches, method,
        pipemare=cfg, **kw,
    )
    return model, backend


def assert_triple_equivalent(rng, method, *, steps=6, batch=16, cfg=None,
                             sim_kw=None, **kw):
    """Simulator vs fused vs unfused: identical per-step losses (as floats)
    and bitwise-identical final weights; fused must not issue more
    commands than unfused."""
    x, y = toy_classification(rng)
    m1, ex = build_mlp_backend(PipelineExecutor, method, cfg=cfg, **(sim_kw or {}))
    m2, fused = build_mlp_backend(
        AsyncPipelineRuntime, method, cfg=cfg, fuse_waves=True,
        deadlock_timeout=TIMEOUT, **kw,
    )
    m3, unfused = build_mlp_backend(
        AsyncPipelineRuntime, method, cfg=cfg, fuse_waves=False,
        deadlock_timeout=TIMEOUT, **kw,
    )
    with fused, unfused:
        for i in range(steps):
            lo = (i * batch) % (len(x) - batch + 1)
            b = slice(lo, lo + batch)
            l1 = ex.train_step(x[b], y[b])
            l2 = fused.train_step(x[b], y[b])
            l3 = unfused.train_step(x[b], y[b])
            assert l1 == l2, f"step {i}: simulator {l1!r} != fused {l2!r}"
            assert l1 == l3, f"step {i}: simulator {l1!r} != unfused {l3!r}"
        fused.sync()
        unfused.sync()
        assert unfused.stats.commands_per_step() >= fused.stats.commands_per_step()
        assert fused.stats.reports_per_step() == fused.stats.commands_per_step()
    for p1, p2, p3 in zip(m1.parameters(), m2.parameters(), m3.parameters()):
        np.testing.assert_array_equal(p1.data, p2.data)
        np.testing.assert_array_equal(p1.data, p3.data)


def wave(op, j, gate=None, sig=None, producer=None):
    return WaveInfo(op=op, j=j, gate_delay=gate, load_sig=sig,
                    producer_gate_delay=producer)


class TestCompileBlocks:
    def test_unfused_yields_singleton_blocks(self):
        infos = [wave("F", 0, gate=3), wave("F", 1, gate=3), wave("B", 0, gate=3)]
        blocks = compile_blocks(infos, fuse=False)
        assert [b.ops for b in blocks] == [(("F", 0),), (("F", 1),), (("B", 0),)]
        assert all(b.loads == (True,) for b in blocks), (
            "singleton blocks must always load — the per-wave reference path"
        )

    def test_flat_gates_fuse_into_one_block(self):
        infos = [wave("F", j, gate=3) for j in range(4)]
        (block,) = compile_blocks(infos)
        assert block.ops == tuple(("F", j) for j in range(4))
        assert block.gate_delay == 3

    def test_rising_gate_breaks_block(self):
        """A wave gated *newer* (smaller delay => larger required version)
        than the entry gate must start a new block — fusing it under the
        entry gate would run it before its version exists."""
        infos = [wave("F", 0, gate=5), wave("F", 1, gate=5), wave("B", 0, gate=2)]
        blocks = compile_blocks(infos)
        assert [b.ops for b in blocks] == [((("F", 0)), ("F", 1)), (("B", 0),)]
        assert blocks[1].gate_delay == 2

    def test_falling_gate_fuses(self):
        """Older requirements (larger delay) ride under the entry gate: the
        entry version dominates them."""
        infos = [wave("F", 0, gate=2), wave("B", 0, gate=5)]
        (block,) = compile_blocks(infos)
        assert block.ops == (("F", 0), ("B", 0))
        assert block.gate_delay == 2

    def test_gated_wave_after_ungated_entry_breaks(self):
        """An ungated entry admits immediately; a gated wave cannot hide
        behind it."""
        infos = [wave("F", 0), wave("F", 1, gate=4)]
        blocks = compile_blocks(infos)
        assert [b.gate_delay for b in blocks] == [None, 4]

    def test_producer_gated_newer_breaks(self):
        """A cross-worker input whose producing wave is gated newer than
        this block's entry may not even be admitted upstream when the block
        starts — the consumer must re-gate."""
        infos = [
            wave("F", 0, gate=5, producer=6),  # producer older: fine
            wave("F", 1, gate=5, producer=3),  # producer newer: break
        ]
        blocks = compile_blocks(infos)
        assert [b.ops for b in blocks] == [(("F", 0),), (("F", 1),)]

    def test_load_dedup_only_between_equal_signatures(self):
        sig_a, sig_b = ("F", (1, 1)), ("F", (0, 0))
        infos = [
            wave("F", 0, gate=3, sig=sig_a),
            wave("F", 1, gate=3, sig=sig_a),  # same sig: skip reload
            wave("F", 2, gate=3, sig=sig_b),  # different sig: reload
            wave("F", 3, gate=3, sig=None),   # unknown sig: always reload
            wave("F", 4, gate=3, sig=sig_b),  # after unknown: reload
        ]
        (block,) = compile_blocks(infos)
        assert block.loads == (True, False, True, True, True)

    def test_first_wave_of_block_always_loads(self):
        """Dedup never crosses a block boundary — the previous block may be
        from an arbitrarily older point in the schedule."""
        sig = ("F", (2,))
        infos = [wave("F", 0, gate=5, sig=sig), wave("F", 1, gate=2, sig=sig)]
        blocks = compile_blocks(infos)
        assert len(blocks) == 2
        assert blocks[1].loads == (True,)

    def test_blocks_tile_the_program(self):
        infos = [wave("F", j, gate=3 + (j % 2), sig=None) for j in range(7)]
        for fuse in (True, False):
            blocks = compile_blocks(infos, fuse)
            flat = [op for b in blocks for op in b.ops]
            assert flat == [(i.op, i.j) for i in infos], (
                "fusion must reorder nothing and drop nothing"
            )


class TestAffineCompilation:
    def test_affine_delay_recovers_constants(self):
        for d in (0, 1, 7):
            assert _affine_delay(lambda t, d=d: max(0, t - d), 20, "x") == d

    def test_non_affine_gate_raises(self):
        with pytest.raises(WaveCompileError):
            _affine_delay(lambda t: t // 2, 20, "halved")
        with pytest.raises(WaveCompileError):
            _affine_delay(lambda t: max(0, t - 3) if t != 1 else 5, 20, "spiked")

    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    @pytest.mark.parametrize("sync", [True, False])
    def test_compiled_gates_match_resolver_exactly(self, rng, method, sync):
        """Every wave's compiled affine gate reproduces the resolver's
        per-wave gate on a minibatch grid, and every block's entry gate
        dominates its member waves — one entry wait is equivalent to the
        per-wave gates it replaces."""
        m, rt = build_mlp_backend(
            AsyncPipelineRuntime, method, num_microbatches=4,
            deadlock_timeout=TIMEOUT,
        )
        with rt:
            plan = rt.plan
            programs = rt.pool._programs[sync]
            horizon = 4 * plan.num_stages + plan.num_microbatches + 8
            for w, (program, compute) in enumerate(zip(programs, rt.workers)):
                stages = compute.read_stages
                for block in program.blocks:
                    for op, j in block.ops:
                        if not stages:
                            assert block.gate_delay is None
                            continue
                        for t in range(horizon + 1):
                            need = plan.wave_gate_version(op, stages, t, j, sync)
                            entry = (
                                0 if block.gate_delay is None
                                else max(0, t - block.gate_delay)
                            )
                            assert entry >= need, (
                                f"worker {w} block entry gate admits wave "
                                f"({op}, {j}) at t={t} before its version: "
                                f"entry={entry} < required={need}"
                            )
                    # the entry gate is the *first* wave's own gate, so the
                    # block never waits on a newer version than the unfused
                    # path would at the same point in the schedule
                    op0, j0 = block.ops[0]
                    if stages:
                        for t in range(horizon + 1):
                            need = plan.wave_gate_version(op0, stages, t, j0, sync)
                            assert max(0, t - block.gate_delay) == need

    def test_blocks_tile_each_step_program(self, rng):
        """No block spans the optimizer boundary: programs are compiled per
        step and the blocks partition exactly that step's waves, fused or
        not."""
        m, rt = build_mlp_backend(
            AsyncPipelineRuntime, "pipemare", num_microbatches=4,
            deadlock_timeout=TIMEOUT,
        )
        with rt:
            from repro.pipeline.runtime import _build_programs

            raw = _build_programs(
                rt.plan.method, rt.num_workers, rt.plan.num_microbatches,
                rt.plan.recompute_segment is not None,
            )
            for sync in (True, False):
                for program, waves in zip(rt.pool._programs[sync], raw[sync]):
                    flat = [op for b in program.blocks for op in b.ops]
                    assert flat == list(waves)
                    assert program.num_waves == len(waves)


class TestCommandReduction:
    @pytest.mark.timeout(120)
    def test_mlp_4stage_commands_drop_at_least_2x(self, rng):
        """The acceptance row: 4-stage MLP, 8 microbatches, thread backend
        — fusion must cut scheduler commands per step by >= 2x (it actually
        reaches the per-step floor: one block per worker per direction)."""
        x, y = toy_classification(rng)
        per_step = {}
        for fuse in (True, False):
            m, rt = build_mlp_backend(
                AsyncPipelineRuntime, "pipemare", num_microbatches=8,
                fuse_waves=fuse, deadlock_timeout=TIMEOUT,
            )
            with rt:
                for i in range(3):
                    rt.train_step(x[:64], y[:64])
                rt.sync()
                per_step[fuse] = rt.stats.commands_per_step()
        assert per_step[False] == 4 * 8 * 2  # one command per wave
        assert per_step[True] * 2 <= per_step[False], (
            f"fusion reduced commands only {per_step[False]}->{per_step[True]}"
        )


class TestDifferentialThread:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    @pytest.mark.parametrize("overlap", [True, False])
    def test_methods_match_bitwise(self, rng, method, overlap):
        assert_triple_equivalent(rng, method, overlap_boundary=overlap)

    TECHNIQUES = {
        "t1": dict(cfg=PipeMareConfig.t1_only(anneal_steps=50), kw={}),
        "t2": dict(cfg=PipeMareConfig.t2_only(decay=0.5), kw={}),
        "t1t2": dict(cfg=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5), kw={}),
        "t3": dict(
            cfg=PipeMareConfig.full(anneal_steps=50, warmup_steps=2, decay=0.5),
            kw={},
        ),
        "recompute": dict(
            cfg=PipeMareConfig.t2_only(decay=0.5), kw={"recompute_segment": 2}
        ),
    }

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    @pytest.mark.parametrize("overlap", [True, False])
    def test_pipemare_techniques_match_bitwise(self, rng, technique, overlap):
        spec = self.TECHNIQUES[technique]
        assert_triple_equivalent(
            rng, "pipemare", steps=8, cfg=spec["cfg"],
            overlap_boundary=overlap, sim_kw=dict(spec["kw"]), **spec["kw"],
        )

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("replicas", [1, 2])
    def test_replica_groups_match_bitwise(self, rng, replicas):
        assert_triple_equivalent(
            rng, "pipemare", num_replicas=replicas,
            sim_kw={"num_replicas": replicas}, batch=24,
        )


class TestDifferentialProcess:
    @pytest.mark.timeout(240)
    @pytest.mark.parametrize("replicas", [1, 2])
    def test_process_matches_bitwise(self, rng, replicas):
        assert_triple_equivalent(
            rng, "pipemare", steps=4, batch=24,
            cfg=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5),
            backend="process", num_replicas=replicas,
            sim_kw={"num_replicas": replicas},
        )


@pytest.mark.net
class TestDifferentialSocket:
    @pytest.mark.timeout(240)
    @pytest.mark.parametrize("technique", ["plain", "t1t2"])
    def test_socket_matches_bitwise(self, rng, technique):
        cfg = (
            None if technique == "plain"
            else PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5)
        )
        assert_triple_equivalent(
            rng, "pipemare", steps=4, cfg=cfg, backend="socket",
        )
