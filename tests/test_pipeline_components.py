"""Tests for partitioning, delay profiles, weight store, ring buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import MLP, resnet_tiny, transformer_tiny
from repro.pipeline import DelayProfile, Method, WeightVersionStore, partition_model
from repro.pipeline.partition import num_weight_units
from repro.utils import RingBuffer


class TestRingBuffer:
    def test_append_and_read(self):
        rb = RingBuffer(3)
        for i in range(5):
            assert rb.append(f"v{i}") == i
        assert rb.latest_version == 4
        assert rb.oldest_version == 2
        assert rb[3] == "v3"

    def test_evicted_read_raises(self):
        rb = RingBuffer(2)
        for i in range(4):
            rb.append(i)
        with pytest.raises(KeyError):
            rb[1]

    def test_future_read_raises(self):
        rb = RingBuffer(2)
        rb.append(0)
        with pytest.raises(KeyError):
            rb[1]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_versions_iteration(self):
        rb = RingBuffer(3)
        for i in range(5):
            rb.append(i)
        assert list(rb.versions()) == [2, 3, 4]

    @given(st.integers(1, 8), st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_property_last_k_always_readable(self, capacity, n):
        rb = RingBuffer(capacity)
        for i in range(n):
            rb.append(i)
        for v in range(max(0, n - capacity), n):
            assert rb[v] == v
        assert len(rb) == min(n, capacity)


class TestPartition:
    def test_weight_and_bias_share_stage(self, rng):
        m = MLP([4, 5, 3], rng)
        stages = partition_model(m)  # finest granularity
        assert len(stages) == 2  # two Linear units
        for stage in stages:
            kinds = {n.rsplit(".", 1)[-1] for n in stage.names}
            assert kinds == {"weight", "bias"}

    def test_topological_order_preserved(self, rng):
        m = MLP([4, 5, 6, 3], rng)
        stages = partition_model(m)
        sizes = [p.shape for s in stages for p in s.params]
        assert sizes[0] == (4, 5)  # first layer first

    def test_even_split(self, rng):
        m = resnet_tiny(rng)
        units = num_weight_units(m)
        stages = partition_model(m, units // 2)
        counts = [len(s.names) for s in stages]
        assert sum(counts) == sum(len(s.names) for s in partition_model(m))
        assert max(counts) - min(counts) <= 2  # near-even in units

    def test_too_many_stages_rejected(self, rng):
        m = MLP([4, 5, 3], rng)
        with pytest.raises(ValueError):
            partition_model(m, 10)

    def test_all_params_covered_exactly_once(self, rng):
        m = transformer_tiny(rng, vocab=16)
        stages = partition_model(m, 7)
        ids = [id(p) for s in stages for p in s.params]
        assert len(ids) == len(set(ids)) == len(m.parameters())

    def test_tied_embedding_counted_once(self):
        tied = transformer_tiny(np.random.default_rng(0), share_embeddings=True)
        untied = transformer_tiny(np.random.default_rng(0), share_embeddings=False)
        assert num_weight_units(tied) < num_weight_units(untied)

    def test_stage_snapshot_and_load(self, rng):
        m = MLP([3, 3, 2], rng)
        stage = partition_model(m)[0]
        snap = stage.snapshot()
        stage.params[0].data = stage.params[0].data + 1.0
        stage.load(snap)
        np.testing.assert_allclose(stage.params[0].data, snap[0])


class TestDelayProfile:
    def test_table1_tau_fwd(self):
        """τ_fwd,i = (2(P−i)+1)/N (Table 1, 1-indexed i)."""
        prof = DelayProfile(8, 4, Method.PIPEMARE)
        assert prof.tau_fwd(0) == pytest.approx((2 * 7 + 1) / 4)
        assert prof.tau_fwd(7) == pytest.approx(1 / 4)

    def test_table1_tau_bkwd(self):
        assert DelayProfile(8, 4, Method.PIPEMARE).tau_bkwd(0) == 0.0
        assert DelayProfile(8, 4, Method.GPIPE).tau_fwd(0) == 0.0
        pd = DelayProfile(8, 4, Method.PIPEDREAM)
        assert pd.tau_bkwd(2) == pd.tau_fwd(2) > 0

    @pytest.mark.parametrize("p,n", [(4, 1), (8, 4), (21, 4), (12, 8), (5, 3)])
    def test_realized_average_fwd_delay_matches_table1(self, p, n):
        """The integer version arithmetic realises the fractional Table 1
        delay exactly on average — the key fidelity property."""
        prof = DelayProfile(p, n, Method.PIPEMARE)
        warm = 4 * p  # skip the pipe-fill transient
        for s in range(p):
            lags = [
                t - prof.fwd_version(s, t, j)
                for t in range(warm, warm + 40)
                for j in range(n)
            ]
            assert np.mean(lags) == pytest.approx(prof.tau_fwd(s)), f"stage {s}"

    def test_fwd_version_never_future_never_negative(self):
        prof = DelayProfile(10, 3, Method.PIPEMARE)
        for t in range(30):
            for s in range(10):
                for j in range(3):
                    v = prof.fwd_version(s, t, j)
                    assert 0 <= v <= t

    def test_pipedream_bkwd_equals_fwd(self):
        prof = DelayProfile(6, 2, Method.PIPEDREAM)
        for t in range(3, 20):
            for s in range(6):
                for j in range(2):
                    assert prof.bkwd_version(s, t, j) == prof.fwd_version(s, t, j)

    def test_pipemare_bkwd_is_current(self):
        prof = DelayProfile(6, 2, Method.PIPEMARE)
        assert prof.bkwd_version(0, 7, 1) == 7

    def test_gpipe_no_delay(self):
        prof = DelayProfile(6, 2, Method.GPIPE)
        assert prof.fwd_version(0, 7, 0) == 7
        assert prof.bkwd_version(0, 7, 1) == 7

    def test_history_covers_oldest_read(self):
        prof = DelayProfile(20, 3, Method.PIPEMARE)
        h = prof.history_needed()
        for t in range(100, 140):
            for j in range(3):
                v = prof.fwd_version(0, t, j)
                assert t - v < h

    def test_monotone_in_stage(self):
        """Later stages read fresher weights."""
        prof = DelayProfile(10, 4, Method.PIPEMARE)
        t = 50
        versions = [prof.fwd_version(s, t, 0) for s in range(10)]
        assert versions == sorted(versions)

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayProfile(0, 1)
        with pytest.raises(ValueError):
            DelayProfile(1, 0)
        prof = DelayProfile(4, 2)
        with pytest.raises(IndexError):
            prof.tau_fwd(4)
        with pytest.raises(IndexError):
            prof.fwd_version(0, 1, 2)
        with pytest.raises(ValueError):
            prof.fwd_version(0, -1, 0)

    @given(st.integers(1, 30), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_property_average_delay(self, p, n):
        prof = DelayProfile(p, n, Method.PIPEMARE)
        s = 0  # earliest stage has the largest delay
        warm = 4 * p
        lags = [
            t - prof.fwd_version(s, t, j)
            for t in range(warm, warm + 5 * n)
            for j in range(n)
        ]
        assert np.mean(lags) == pytest.approx(prof.tau_fwd(s))


class TestWeightStore:
    def test_initial_version_zero(self, rng):
        m = MLP([3, 3, 2], rng)
        stages = partition_model(m)
        store = WeightVersionStore(stages, 4)
        assert store.latest_version == 0

    def test_push_and_load_roundtrip(self, rng):
        m = MLP([3, 3, 2], rng)
        stages = partition_model(m)
        store = WeightVersionStore(stages, 4)
        v0 = [stages[0].params[0].data.copy()]
        stages[0].params[0].data = stages[0].params[0].data + 1.0
        store.push_current()
        store.load(0, 0)
        np.testing.assert_allclose(stages[0].params[0].data, v0[0])
        store.load_latest(0)
        np.testing.assert_allclose(stages[0].params[0].data, v0[0] + 1.0)

    def test_old_versions_preserved_by_rebinding_updates(self, rng):
        """Optimizer-style rebinding must leave stored versions intact."""
        m = MLP([3, 3, 2], rng)
        stages = partition_model(m)
        store = WeightVersionStore(stages, 4)
        original = stages[0].params[0].data.copy()
        for _ in range(3):
            for s in stages:
                for p in s.params:
                    p.data = p.data + 1.0  # rebinding, like an optimizer
            store.push_current()
        np.testing.assert_allclose(store.weights(0, 0)[0], original)
        np.testing.assert_allclose(store.weights(0, 3)[0], original + 3.0)

    def test_eviction_raises(self, rng):
        m = MLP([3, 3, 2], rng)
        stages = partition_model(m)
        store = WeightVersionStore(stages, 2)
        for _ in range(4):
            store.push_current()
        with pytest.raises(KeyError):
            store.weights(0, 0)

    def test_empty_stage_list_rejected(self):
        with pytest.raises(ValueError):
            WeightVersionStore([], 2)
