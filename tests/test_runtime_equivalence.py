"""Differential tests: the concurrent async runtime must be bit-for-bit
identical to the sequential simulator.

The two backends share one :class:`repro.pipeline.plan.StepPlan`, so any
divergence means the runtime executed a different computation — wrong weight
version, wrong gradient accumulation order, clobbered activation caches.
Every case trains the same model twice (same seed, same data) and asserts
per-step losses compare equal as floats and final weights are bitwise equal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.models import MLP
from repro.models.resnet import resnet_tiny
from repro.nn import CrossEntropyLoss, Dropout, Sequential
from repro.optim import SGD, AdamW
from repro.pipeline import (
    AsyncPipelineRuntime,
    PipelineExecutor,
    make_backend,
    partition_model,
)
from repro.pipeline.executor import param_groups_from_stages


def toy_classification(rng, d=6, c=3, n=96):
    centers = rng.normal(size=(c, d)) * 2
    y = rng.integers(0, c, size=n)
    x = centers[y] + rng.normal(size=(n, d))
    return x, y


def build_mlp_backend(cls, method, *, num_stages, num_microbatches, cfg=None,
                      seed=7, lr=0.05, momentum=0.9, dims=(6, 8, 8, 8, 3), **kw):
    model = MLP(list(dims), np.random.default_rng(seed))
    stages = partition_model(model, num_stages)
    opt = SGD(param_groups_from_stages(stages), lr=lr, momentum=momentum)
    backend = cls(
        model, CrossEntropyLoss(), opt, stages, num_microbatches, method,
        pipemare=cfg, **kw,
    )
    return model, backend


def assert_equivalent(m1, ex, m2, rt, x, y, steps=6, batch=16):
    for i in range(steps):
        b = slice((i * batch) % (len(x) - batch + 1), (i * batch) % (len(x) - batch + 1) + batch)
        l1 = ex.train_step(x[b], y[b])
        l2 = rt.train_step(x[b], y[b])
        assert l1 == l2, f"step {i}: simulator loss {l1!r} != runtime loss {l2!r}"
    if hasattr(rt, "sync"):
        rt.sync()  # settle a pending overlapped boundary before comparing
    for p1, p2 in zip(m1.parameters(), m2.parameters()):
        np.testing.assert_array_equal(p1.data, p2.data)


# The differential grid: method × stages × microbatches × technique/recompute.
TECHNIQUES = {
    "plain": dict(cfg=None, kw={}),
    "t1": dict(cfg=PipeMareConfig.t1_only(anneal_steps=50), kw={}),
    "t2": dict(cfg=PipeMareConfig.t2_only(decay=0.5), kw={}),
    "t1t2": dict(cfg=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5), kw={}),
    "t3": dict(
        cfg=PipeMareConfig.full(anneal_steps=50, warmup_steps=2, decay=0.5), kw={}
    ),
    "recompute": dict(
        cfg=PipeMareConfig.t2_only(decay=0.5), kw={"recompute_segment": 2}
    ),
}


class TestDifferentialGrid:
    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    @pytest.mark.parametrize("num_stages,num_microbatches", [(2, 2), (4, 2), (4, 4), (3, 4)])
    def test_methods_match_bitwise(self, rng, method, num_stages, num_microbatches):
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(
            PipelineExecutor, method,
            num_stages=num_stages, num_microbatches=num_microbatches,
        )
        m2, rt = build_mlp_backend(
            AsyncPipelineRuntime, method,
            num_stages=num_stages, num_microbatches=num_microbatches,
        )
        with rt:
            assert rt.num_workers == num_stages
            assert_equivalent(m1, ex, m2, rt, x, y)

    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    def test_pipemare_techniques_match_bitwise(self, rng, technique):
        x, y = toy_classification(rng)
        spec = TECHNIQUES[technique]
        m1, ex = build_mlp_backend(
            PipelineExecutor, "pipemare", num_stages=4, num_microbatches=2,
            cfg=spec["cfg"], **spec["kw"],
        )
        m2, rt = build_mlp_backend(
            AsyncPipelineRuntime, "pipemare", num_stages=4, num_microbatches=2,
            cfg=spec["cfg"], **spec["kw"],
        )
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y, steps=8)

    def test_ragged_microbatches_match(self, rng):
        """10 samples into 4 microbatches: the per-microbatch grad weighting
        must agree across backends."""
        x, y = toy_classification(rng, n=10)
        m1, ex = build_mlp_backend(PipelineExecutor, "pipemare", num_stages=4, num_microbatches=4)
        m2, rt = build_mlp_backend(AsyncPipelineRuntime, "pipemare", num_stages=4, num_microbatches=4)
        with rt:
            for _ in range(4):
                assert ex.train_step(x, y) == rt.train_step(x, y)
            rt.sync()
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)

    def test_adamw_backend_matches(self, rng):
        """Optimizer state (moments) must evolve identically too."""
        x, y = toy_classification(rng)
        models, backends = [], []
        for cls in (PipelineExecutor, AsyncPipelineRuntime):
            model = MLP([6, 8, 8, 3], np.random.default_rng(3))
            stages = partition_model(model, 3)
            opt = AdamW(param_groups_from_stages(stages), lr=0.01, weight_decay=0.01)
            backends.append(cls(model, CrossEntropyLoss(), opt, stages, 2, "pipemare"))
            models.append(model)
        m1, m2 = models
        ex, rt = backends
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y)


class TestResNetSlicing:
    @pytest.mark.parametrize("num_stages", [3, 8])
    def test_resnet_matches_even_when_blocks_split(self, rng, num_stages):
        """stages=8 splits residual blocks across stage boundaries; the
        block executes whole on one worker while each parameter still reads
        its own stage's version."""
        x = rng.normal(size=(16, 3, 8, 8))
        y = rng.integers(0, 10, size=16)
        models, backends = [], []
        for cls in (PipelineExecutor, AsyncPipelineRuntime):
            model = resnet_tiny(np.random.default_rng(1))
            stages = partition_model(model, num_stages)
            opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
            backends.append(cls(model, CrossEntropyLoss(), opt, stages, 4, "pipemare"))
            models.append(model)
        ex, rt = backends
        with rt:
            if num_stages == 8:
                # fine partition cuts through blocks → fewer workers than stages
                assert rt.num_workers < num_stages
            for _ in range(3):
                assert ex.train_step(x, y) == rt.train_step(x, y)
            rt.sync()
            for p1, p2 in zip(models[0].parameters(), models[1].parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)


class TestInPlaceCaches:
    def test_embedding_stack_cache_matches(self, rng):
        """Embedding mutates its cache *in place* (``_idx_stack`` append/pop),
        so the runtime's snapshots must copy containers — with many in-flight
        microbatches an aliased stack would scatter gradients to the wrong
        token indices."""
        from repro.nn import GELU, Embedding, Linear

        vocab, d = 11, 8
        x = rng.integers(0, vocab, size=(48,))
        y = rng.integers(0, 3, size=48)
        models, backends = [], []
        for cls in (PipelineExecutor, AsyncPipelineRuntime):
            r = np.random.default_rng(13)
            model = Sequential(
                Embedding(vocab, d, r), Linear(d, d, r), GELU(), Linear(d, 3, r)
            )
            stages = partition_model(model, 3)
            opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
            backends.append(cls(model, CrossEntropyLoss(), opt, stages, 4, "pipemare"))
            models.append(model)
        ex, rt = backends
        with rt:
            assert rt.num_workers == 3
            for i in range(5):
                b = slice(i * 8, i * 8 + 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])
            rt.sync()
            for p1, p2 in zip(models[0].parameters(), models[1].parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)


class TestRuntimeContract:
    def test_checkpoint_roundtrip_across_backends(self, rng):
        """A simulator checkpoint restored into the async runtime continues
        the exact same trajectory (shared StepPlan state format)."""
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(PipelineExecutor, "pipemare", num_stages=4, num_microbatches=2)
        for i in range(3):
            ex.train_step(x[i * 16:(i + 1) * 16], y[i * 16:(i + 1) * 16])
        state = ex.state_dict()
        opt_state = ex.optimizer.state_dict()

        m2, rt = build_mlp_backend(AsyncPipelineRuntime, "pipemare", num_stages=4, num_microbatches=2)
        with rt:
            m2.load_state_dict(m1.state_dict())
            rt.optimizer.load_state_dict(opt_state)
            rt.load_state_dict(state)
            assert rt.t == ex.t
            for i in range(3, 6):
                b = slice(i * 16, (i + 1) * 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])

    def test_latest_weights_live_after_step(self, rng):
        """Eval between steps must see version t (same guarantee the
        simulator gives the trainer)."""
        x, y = toy_classification(rng)
        m, rt = build_mlp_backend(AsyncPipelineRuntime, "pipemare", num_stages=4, num_microbatches=2)
        with rt:
            rt.train_step(x[:16], y[:16])
            rt.sync()  # with the overlapped boundary, eval points read via sync()
            for s, stage in enumerate(rt.stages):
                for p, stored in zip(stage.params, rt.store.weights(s, rt.store.latest_version)):
                    assert p.data is stored

    def test_minibatch_smaller_than_microbatches_rejected(self, rng):
        m, rt = build_mlp_backend(AsyncPipelineRuntime, "pipemare", num_stages=2, num_microbatches=8)
        with rt:
            with pytest.raises(ValueError):
                rt.train_step(np.zeros((4, 6)), np.zeros(4, dtype=int))

    def test_training_dropout_rejected(self, rng):
        from repro.nn import Linear

        model = Sequential(
            Linear(6, 8, np.random.default_rng(0)),
            Dropout(0.5, np.random.default_rng(1)),
            Linear(8, 3, np.random.default_rng(2)),
        )
        stages = partition_model(model, 2)
        opt = SGD(param_groups_from_stages(stages), lr=0.05)
        with pytest.raises(ValueError, match="Dropout"):
            AsyncPipelineRuntime(model, CrossEntropyLoss(), opt, stages, 2, "pipemare")

    def test_closed_runtime_rejects_steps(self, rng):
        x, y = toy_classification(rng)
        m, rt = build_mlp_backend(AsyncPipelineRuntime, "pipemare", num_stages=2, num_microbatches=2)
        rt.close()
        rt.close()  # idempotent
        with pytest.raises(RuntimeError):
            rt.train_step(x[:16], y[:16])

    def test_make_backend_dispatch(self, rng):
        m1, ex = build_mlp_backend(PipelineExecutor, "pipemare", num_stages=2, num_microbatches=2)
        assert isinstance(ex, PipelineExecutor)
        model = MLP([6, 8, 3], np.random.default_rng(0))
        stages = partition_model(model, 2)
        opt = SGD(param_groups_from_stages(stages), lr=0.05)
        rt = make_backend("async", model, CrossEntropyLoss(), opt, stages, 2, "pipemare")
        assert isinstance(rt, AsyncPipelineRuntime)
        rt.close()
        with pytest.raises(ValueError, match="unknown runtime"):
            make_backend("hardware", model, CrossEntropyLoss(), opt, stages, 2, "pipemare")
