"""Theory tests: characteristic polynomials, companion matrices, lemma
closed forms vs numerical root-finding, and trajectory simulations matching
the figures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import (
    QuadraticTrajectory,
    char_poly_delayed_sgd,
    char_poly_discrepancy,
    char_poly_momentum,
    char_poly_recompute,
    char_poly_t2,
    companion_from_poly,
    companion_matrix,
    double_root_alpha,
    is_stable,
    lemma1_alpha_max,
    lemma2_alpha_bound,
    lemma3_alpha_bound,
    max_stable_alpha,
    simulate_delayed_least_squares,
    simulate_delayed_sgd,
    simulate_discrepancy_sgd,
    simulate_momentum_sgd,
    simulate_recompute_sgd,
    simulate_t2_sgd,
    spectral_radius,
    t2_decay_from_gamma,
    t2_gamma,
)
from repro.theory.polynomials import poly_add, poly_eval, poly_mul, poly_scale


class TestPolynomials:
    def test_delayed_sgd_coefficients(self):
        # omega^3 - omega^2 + 0.3  for tau=2, alpha*lam=0.3
        p = char_poly_delayed_sgd(2, 0.3, 1.0)
        np.testing.assert_allclose(p, [1, -1, 0, 0.3])

    def test_delayed_sgd_tau_zero(self):
        # omega - 1 + alpha*lam : root at 1 - alpha*lam (plain GD)
        p = char_poly_delayed_sgd(0, 0.5, 1.0)
        roots = np.roots(p)
        np.testing.assert_allclose(roots, [0.5])

    def test_discrepancy_reduces_to_delayed_when_delta_zero(self):
        p1 = char_poly_discrepancy(5, 2, 0.1, 1.0, 0.0)
        p2 = char_poly_delayed_sgd(5, 0.1, 1.0)
        np.testing.assert_allclose(p1, p2)

    def test_t2_reduces_to_discrepancy_at_gamma_zero_large_tau(self):
        """γ=0 makes the correction a one-step memory; the polynomial's
        leading structure (ω−1)(ω−γ)ω^τ + ... at γ=0 differs from the raw
        discrepancy one only by the added correction terms."""
        p = char_poly_t2(6, 2, 0.05, 1.0, 3.0, 0.0)
        assert len(p) == 6 + 3  # degree τf + 2

    def test_recompute_reduces_to_t2_when_phi_zero(self):
        p1 = char_poly_recompute(8, 4, 1, 0.05, 1.0, 5.0, 0.0, 0.4)
        p2 = char_poly_t2(8, 1, 0.05, 1.0, 5.0, 0.4)
        np.testing.assert_allclose(poly_add(p1, poly_scale(p2, -1.0)), 0.0, atol=1e-14)

    def test_momentum_beta_zero_is_plain(self):
        p1 = char_poly_momentum(4, 0.1, 1.0, 0.0)
        p2 = char_poly_delayed_sgd(4, 0.1, 1.0)
        # same polynomial up to a factor of omega (state augmentation)
        np.testing.assert_allclose(np.trim_zeros(p1, "b"), p2[: len(np.trim_zeros(p1, 'b'))])

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            char_poly_delayed_sgd(-1, 0.1, 1.0)
        with pytest.raises(ValueError):
            char_poly_delayed_sgd(1, 0.1, 0.0)
        with pytest.raises(ValueError):
            char_poly_discrepancy(2, 3, 0.1, 1.0, 1.0)
        with pytest.raises(ValueError):
            char_poly_momentum(0, 0.1, 1.0, 0.5)
        with pytest.raises(ValueError):
            char_poly_t2(5, 1, 0.1, 1.0, 1.0, 1.0)

    def test_poly_helpers(self):
        a = np.array([1.0, 2.0])       # x + 2
        b = np.array([1.0, 0.0, 1.0])  # x^2 + 1
        np.testing.assert_allclose(poly_mul(a, b), [1, 2, 1, 2])
        np.testing.assert_allclose(poly_add(a, b), [1, 1, 3])
        assert poly_eval(b, 2.0) == pytest.approx(5.0)
        assert poly_eval(b, 1j) == pytest.approx(0.0)


class TestCompanion:
    def test_eigenvalues_match_roots(self):
        p = char_poly_delayed_sgd(4, 0.1, 1.0)
        c = companion_from_poly(p)
        ev = np.sort_complex(np.linalg.eigvals(c))
        rt = np.sort_complex(np.roots(p))
        np.testing.assert_allclose(ev, rt, atol=1e-10)

    def test_explicit_companion_matches_eq3(self):
        c = companion_matrix(3, 0.2, 1.5)
        assert c.shape == (4, 4)
        assert c[0, 0] == 1.0
        assert c[0, -1] == pytest.approx(-0.3)
        p = char_poly_delayed_sgd(3, 0.2, 1.5)
        ev = np.sort_complex(np.linalg.eigvals(c))
        rt = np.sort_complex(np.roots(p))
        np.testing.assert_allclose(ev, rt, atol=1e-10)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            companion_from_poly(np.array([1.0]))
        with pytest.raises(ValueError):
            companion_from_poly(np.array([0.0, 1.0]))


class TestLemma1:
    @pytest.mark.parametrize("tau", [1, 2, 3, 5, 10, 25])
    def test_closed_form_matches_numeric(self, tau):
        lam = 1.0
        closed = lemma1_alpha_max(tau, lam)
        numeric = max_stable_alpha(lambda a: char_poly_delayed_sgd(tau, a, lam))
        assert numeric == pytest.approx(closed, rel=1e-4)

    def test_lambda_scaling(self):
        assert lemma1_alpha_max(5, 2.0) == pytest.approx(lemma1_alpha_max(5, 1.0) / 2)

    def test_tau_zero_recovers_gd(self):
        assert lemma1_alpha_max(0, 1.0) == pytest.approx(2.0)

    def test_threshold_decays_like_inverse_tau(self):
        r = lemma1_alpha_max(100, 1.0) / lemma1_alpha_max(200, 1.0)
        assert r == pytest.approx(2.0, rel=0.02)

    def test_just_inside_stable_just_outside_not(self):
        tau, lam = 6, 1.0
        a = lemma1_alpha_max(tau, lam)
        assert is_stable(char_poly_delayed_sgd(tau, a * 0.999, lam), tol=0)
        assert not is_stable(char_poly_delayed_sgd(tau, a * 1.001, lam), tol=0)

    def test_double_root_location(self):
        """Lemma 1's double root: at α = (τ/(τ+1))^τ / (λ(τ+1)) the poly has
        a root of multiplicity 2 at ω = τ/(τ+1)."""
        tau, lam = 4, 1.0
        a = double_root_alpha(tau, lam)
        p = char_poly_delayed_sgd(tau, a, lam)
        omega = tau / (tau + 1)
        assert abs(poly_eval(p, omega)) < 1e-12
        dp = np.polyder(np.poly1d(p))
        assert abs(dp(omega)) < 1e-12


class TestLemma2:
    @pytest.mark.parametrize("delta", [0.5, 2.0, 10.0])
    def test_instability_exists_below_bound(self, delta):
        tau_f, tau_b, lam = 10, 6, 1.0
        bound = lemma2_alpha_bound(tau_f, tau_b, lam, delta)
        numeric = max_stable_alpha(
            lambda a: char_poly_discrepancy(tau_f, tau_b, a, lam, delta)
        )
        assert numeric <= bound * (1 + 1e-6)

    def test_large_delta_shrinks_threshold(self):
        f = lambda d: max_stable_alpha(
            lambda a: char_poly_discrepancy(10, 6, a, 1.0, d)
        )
        assert f(10.0) < f(1.0) < f(0.01)


class TestLemma3:
    @pytest.mark.parametrize("beta", [0.1, 0.5, 0.9])
    def test_momentum_cannot_escape_bound(self, beta):
        tau, lam = 8, 1.0
        bound = lemma3_alpha_bound(tau, lam)
        numeric = max_stable_alpha(lambda a: char_poly_momentum(tau, a, lam, beta))
        assert numeric <= bound * (1 + 1e-6)

    def test_momentum_shrinks_threshold(self):
        tau, lam = 8, 1.0
        plain = max_stable_alpha(lambda a: char_poly_delayed_sgd(tau, a, lam))
        mom = max_stable_alpha(lambda a: char_poly_momentum(tau, a, lam, 0.9))
        assert mom < plain


class TestT2Gamma:
    def test_gamma_rule(self):
        assert t2_gamma(10, 6) == pytest.approx(1 - 2 / 5)

    def test_decay_tends_to_exp_minus_2(self):
        d = t2_decay_from_gamma(1000, 0)
        assert d == pytest.approx(np.exp(-2), rel=1e-2)

    def test_t2_enlarges_stable_range_for_positive_delta(self):
        """The Figure 5(b)/Appendix B.5 claim: for Δ>0 the corrected system
        tolerates larger α (checked here over the paper's sweep range)."""
        for tau_f, tau_b in [(10, 6), (20, 5), (40, 10)]:
            for delta in [1.0, 5.0, 25.0]:
                g = t2_gamma(tau_f, tau_b)
                base = max_stable_alpha(
                    lambda a: char_poly_discrepancy(tau_f, tau_b, a, 1.0, delta)
                )
                corr = max_stable_alpha(
                    lambda a: char_poly_t2(tau_f, tau_b, a, 1.0, delta, g)
                )
                assert corr > base, (tau_f, tau_b, delta)

    def test_gamma_requires_gap(self):
        with pytest.raises(ValueError):
            t2_gamma(5, 5)


class TestTrajectories:
    def test_figure3a_tau10_diverges_tau5_converges(self):
        """λ=1, α=0.2: τ∈{0,5} converge, τ=10 diverges (Figure 3a)."""
        rng = np.random.default_rng(1)
        t0 = simulate_delayed_sgd(1.0, 0.2, 0, 300, rng=np.random.default_rng(1))
        t5 = simulate_delayed_sgd(1.0, 0.2, 5, 300, rng=np.random.default_rng(1))
        t10 = simulate_delayed_sgd(1.0, 0.2, 10, 300, rng=np.random.default_rng(1))
        assert t0.final_loss < 5
        assert t5.final_loss < 5
        assert t10.final_loss > 100  # exponential blowup under way

    def test_deterministic_convergence_matches_spectral_radius(self):
        """Noise-free decay rate equals the spectral radius of C."""
        tau, alpha, lam = 3, 0.1, 1.0
        t = simulate_delayed_sgd(lam, alpha, tau, 400, noise_std=0.0, w0=1.0)
        rho = spectral_radius(char_poly_delayed_sgd(tau, alpha, lam))
        measured = (abs(t.iterates[-1]) / abs(t.iterates[200])) ** (1 / 199)
        assert measured == pytest.approx(rho, rel=1e-2)

    def test_figure5a_delta_divergence(self):
        """τf=10, τb=6, λ=1: Δ=5 diverges where Δ=0 converges (Figure 5a)."""
        kw = dict(lam=1.0, alpha=0.05, tau_fwd=10, tau_bkwd=6, steps=300)
        t_good = simulate_discrepancy_sgd(delta=0.0, rng=np.random.default_rng(1), **kw)
        t_bad = simulate_discrepancy_sgd(delta=5.0, rng=np.random.default_rng(1), **kw)
        assert t_good.final_loss < 5
        assert t_bad.final_loss > 10 * t_good.final_loss

    def test_t2_simulation_stabilizes_discrepancy(self):
        kw = dict(lam=1.0, alpha=0.05, tau_fwd=10, tau_bkwd=6, steps=400)
        bad = simulate_discrepancy_sgd(delta=5.0, rng=np.random.default_rng(1), **kw)
        g = t2_gamma(10, 6)
        good = simulate_t2_sgd(delta=5.0, gamma=g, rng=np.random.default_rng(1), **kw)
        assert good.final_loss < bad.final_loss / 10

    def test_momentum_simulation_diverges_beyond_threshold(self):
        tau, lam, beta = 5, 1.0, 0.9
        amax = max_stable_alpha(lambda a: char_poly_momentum(tau, a, lam, beta))
        stable = simulate_momentum_sgd(lam, amax * 0.7, tau, beta, 3000, noise_std=0.0, w0=1.0)
        unstable = simulate_momentum_sgd(lam, amax * 1.5, tau, beta, 3000, noise_std=0.0, w0=1.0)
        assert abs(stable.iterates[-1]) < 0.5
        assert abs(unstable.iterates[-1]) > 10.0

    def test_recompute_simulation_runs_and_matches_t2_at_phi_zero(self):
        kw = dict(lam=1.0, alpha=0.03, tau_fwd=8, tau_bkwd=1, steps=200, noise_std=0.0, w0=1.0)
        g = 0.4
        t_rec = simulate_recompute_sgd(tau_recomp=4, delta=3.0, phi=0.0, gamma=g, **kw)
        t_t2 = simulate_t2_sgd(delta=3.0, gamma=g, **kw)
        np.testing.assert_allclose(t_rec.iterates, t_t2.iterates, atol=1e-12)

    def test_divergence_flag_set(self):
        t = simulate_delayed_sgd(1.0, 1.5, 10, 2000, noise_std=1.0)
        assert t.diverged

    def test_trajectory_validation(self):
        with pytest.raises(ValueError):
            simulate_discrepancy_sgd(1.0, 0.1, 2, 5, 0.0, 10)
        with pytest.raises(ValueError):
            simulate_t2_sgd(1.0, 0.1, 5, 2, 0.0, 1.0, 10)

    def test_least_squares_boundary_scales_inverse_tau(self):
        """The Figure 3(b) diagonal: divergence boundary α ∝ 1/τ."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(256, 4))
        y = x @ rng.normal(size=4)

        def unstable(alpha, tau):
            series, diverged = simulate_delayed_least_squares(
                x, y, alpha, tau, 800, rng=np.random.default_rng(1)
            )
            return diverged or series[-1] > 10 * series[0]

        def boundary(tau):
            lo, hi = 1e-5, 2.0
            for _ in range(24):
                mid = np.sqrt(lo * hi)
                if unstable(mid, tau):
                    hi = mid
                else:
                    lo = mid
            return lo

        b4, b16 = boundary(4), boundary(16)
        assert b4 / b16 == pytest.approx(16 / 4, rel=0.35)


class TestStabilityUtils:
    def test_spectral_radius_strips_leading_zeros(self):
        assert spectral_radius(np.array([0.0, 1.0, -0.5])) == pytest.approx(0.5)

    def test_spectral_radius_rejects_zero_poly(self):
        with pytest.raises(ValueError):
            spectral_radius(np.zeros(3))

    def test_max_stable_alpha_rejects_unstable_start(self):
        with pytest.raises(ValueError):
            max_stable_alpha(lambda a: np.array([1.0, -2.0]), alpha_lo=1.0)

    def test_max_stable_alpha_hits_cap_for_always_stable(self):
        out = max_stable_alpha(lambda a: np.array([1.0, 0.0]), alpha_hi=4.0)
        assert out == 4.0

    @given(st.integers(1, 12), st.floats(0.1, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_property_lemma1_boundary(self, tau, lam):
        """Just inside the Lemma 1 threshold is always stable; just outside
        never is."""
        a = lemma1_alpha_max(tau, lam)
        assert is_stable(char_poly_delayed_sgd(tau, 0.98 * a, lam), tol=0)
        assert not is_stable(char_poly_delayed_sgd(tau, 1.02 * a, lam), tol=0)


class TestLemma1CrossingFamily:
    """Appendix B.2's root-counting machinery: the full family of α values
    where roots of eq. (4) cross the unit circle (not just the first)."""

    @pytest.mark.parametrize("tau", [1, 3, 10, 17])
    def test_every_family_member_is_exact_unit_circle_root(self, tau):
        from repro.theory import lemma1_crossing_family
        from repro.theory.polynomials import char_poly_delayed_sgd, poly_eval

        for n in range(tau // 2 + 1):
            alpha, omega = lemma1_crossing_family(tau, 1.0, n)
            assert abs(abs(omega) - 1.0) < 1e-12
            val = poly_eval(char_poly_delayed_sgd(tau, alpha, 1.0), omega)
            assert abs(val) < 1e-10, f"n={n}: |p(omega)|={abs(val):.2e}"
            # conjugate root too (real polynomial)
            val_c = poly_eval(char_poly_delayed_sgd(tau, alpha, 1.0), omega.conjugate())
            assert abs(val_c) < 1e-10

    def test_first_crossing_is_the_lemma1_threshold(self):
        from repro.theory import lemma1_alpha_max, lemma1_crossing_family

        for tau in (2, 5, 12):
            alpha0, _ = lemma1_crossing_family(tau, 2.0, 0)
            assert alpha0 == pytest.approx(lemma1_alpha_max(tau, 2.0), rel=1e-12)

    def test_family_alphas_increase_with_n(self):
        from repro.theory import lemma1_crossing_family

        alphas = [lemma1_crossing_family(12, 1.0, n)[0] for n in range(7)]
        assert alphas == sorted(alphas)
        assert alphas[-1] <= 2.0 + 1e-12  # (2/λ)sin(θ) ≤ 2/λ

    def test_invalid_arguments_rejected(self):
        from repro.theory import lemma1_crossing_family

        with pytest.raises(ValueError):
            lemma1_crossing_family(10, -1.0, 0)
        with pytest.raises(ValueError):
            lemma1_crossing_family(0, 1.0, 0)
        with pytest.raises(ValueError):
            lemma1_crossing_family(10, 1.0, 6)  # > tau//2
