"""Arena-reuse safety: recycled slabs must never leak stale values.

The kernels in ``repro.nn`` allocate every intermediate through
:func:`repro.nn.arena.empty`.  A slab recycled too early — while a
same-step backward cache, a cross-worker hand-off, or a recompute
snapshot still references it — would silently corrupt the computation.
``REPRO_ARENA_DEBUG=1`` turns that failure mode loud: every recycled
slab is poison-filled (NaN for floats) before re-entering the free list,
so any read-after-recycle becomes a NaN loss or a bitwise divergence
from the arena-free simulator.

This module runs the differential grid under the poison toggle: if
generation lifetimes (``Arena.depth`` vs the pool's two-steps-in-flight
window) were ever wrong, these tests fail with NaNs instead of passing
on luck.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.nn import arena
from repro.pipeline import AsyncPipelineRuntime, PipelineExecutor

from test_runtime_equivalence import (
    assert_equivalent,
    build_mlp_backend,
    toy_classification,
)


@pytest.fixture
def poison(monkeypatch):
    """Poison-fill recycled slabs in every arena built below (worker
    threads read the env var when they construct their arena; spawned
    worker processes inherit it)."""
    monkeypatch.setenv("REPRO_ARENA_DEBUG", "1")


class TestArenaUnit:
    def test_empty_outside_program_raises(self):
        a = arena.Arena()
        with pytest.raises(RuntimeError, match="begin_program"):
            a.empty((4,))

    def test_module_level_empty_falls_back_without_arena(self):
        assert arena.current() is None
        out = arena.empty((3, 2))
        assert out.shape == (3, 2) and out.dtype == np.float64

    def test_generation_recycling_honours_depth(self):
        a = arena.Arena(depth=2, debug=False)
        a.begin_program(1)
        s1 = a.empty((8,))
        a.begin_program(2)
        assert a.recycled == 0, "gen 1 recycled one step early"
        a.begin_program(3)
        assert a.recycled == 1
        s3 = a.empty((8,))
        assert s3 is s1, "matching-shape slab should be reused, not grown"
        assert a.slabs == 1

    def test_debug_poisons_recycled_slabs(self):
        a = arena.Arena(depth=1, debug=True)
        a.begin_program(1)
        s = a.empty((4,))
        s[...] = 7.0
        a.begin_program(2)
        s2 = a.empty((4,))
        assert s2 is s
        assert np.isnan(s2).all(), "recycled float slab must be NaN-poisoned"

    def test_resident_bytes_counts_free_and_live(self):
        a = arena.Arena(depth=1, debug=False)
        a.begin_program(1)
        a.empty((16,))          # live
        a.begin_program(2)      # now free
        a.empty((4,), np.int64)  # live
        assert a.resident_bytes() == 16 * 8 + 4 * 8

    def test_installed_arena_serves_module_level_empty(self):
        a = arena.Arena(debug=False)
        arena.set_current(a)
        try:
            a.begin_program(0)
            out = arena.empty((5,))
            assert a.slabs == 1 and out.shape == (5,)
        finally:
            arena.set_current(None)


ARENA_GRID = {
    "plain": dict(cfg=None, kw={}),
    "t1t2": dict(cfg=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5), kw={}),
    "t3": dict(
        cfg=PipeMareConfig.full(anneal_steps=50, warmup_steps=2, decay=0.5), kw={}
    ),
    "recompute": dict(
        cfg=PipeMareConfig.t2_only(decay=0.5), kw={"recompute_segment": 2}
    ),
}


class TestPoisonedDifferentialGrid:
    @pytest.mark.parametrize("technique", sorted(ARENA_GRID))
    def test_thread_runtime_matches_simulator_under_poison(
        self, rng, poison, technique
    ):
        x, y = toy_classification(rng)
        spec = ARENA_GRID[technique]
        m1, ex = build_mlp_backend(
            PipelineExecutor, "pipemare", num_stages=4, num_microbatches=2,
            cfg=spec["cfg"], **spec["kw"],
        )
        m2, rt = build_mlp_backend(
            AsyncPipelineRuntime, "pipemare", num_stages=4, num_microbatches=2,
            cfg=spec["cfg"], **spec["kw"],
        )
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y, steps=8)

    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    def test_methods_match_under_poison(self, rng, poison, method):
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(
            PipelineExecutor, method, num_stages=3, num_microbatches=4,
        )
        m2, rt = build_mlp_backend(
            AsyncPipelineRuntime, method, num_stages=3, num_microbatches=4,
        )
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y)

    @pytest.mark.timeout(120)
    def test_process_runtime_matches_simulator_under_poison(self, rng, poison):
        """The process backend adds the in-ring compute path (slabs that
        live in shared-memory slots rather than the arena) — the poison
        grid must cover it too."""
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(
            PipelineExecutor, "pipemare", num_stages=4, num_microbatches=2,
        )
        m2, rt = build_mlp_backend(
            AsyncPipelineRuntime, "pipemare", num_stages=4, num_microbatches=2,
            backend="process", deadlock_timeout=60.0,
        )
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y, steps=4)
