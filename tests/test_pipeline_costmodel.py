"""Cost-model tests: Table 1, Appendix A.3 throughput, Tables 4/5 memory."""

import numpy as np
import pytest

from repro.pipeline import Method, costmodel, recompute
from repro.pipeline.schedule import build_schedule, bubble_fraction


class TestThroughput:
    def test_table1_normalized_throughput(self):
        assert costmodel.normalized_throughput("pipemare", 100, 8) == 1.0
        assert costmodel.normalized_throughput("pipedream", 100, 8) == 1.0
        assert costmodel.normalized_throughput("gpipe", 100, 8) == pytest.approx(
            8 / (8 + 99)
        )

    def test_gpipe_case1_alpha_large(self):
        """App A.3 case 1: α ≥ 3 ⇒ throughput 1/(α+1), max 0.25 at α=3."""
        assert costmodel.gpipe_relative_throughput(3.0) == pytest.approx(0.25)
        assert costmodel.gpipe_relative_throughput(6.0) == pytest.approx(1 / 7)

    def test_gpipe_case2_alpha_small(self):
        """Case 2: α ≤ 3/2 ⇒ 1/(2(1+1/α)), max 0.3 at α=3/2."""
        assert costmodel.gpipe_relative_throughput(1.5) == pytest.approx(0.3)
        assert costmodel.gpipe_relative_throughput(0.5) == pytest.approx(1 / 6)

    def test_gpipe_optimum_is_0_30(self):
        """The paper's headline: optimal GPipe ≈ 0.30×.

        (The paper states the optimum at α=√(3/2), but that point falls
        outside its own case-3 range (3/2, 3); the true maximum of its
        latency model is 0.30 at the case-2/3 boundary α = 3/2 — the
        headline 0.30 number itself is correct.)
        """
        tput, alpha = costmodel.optimal_gpipe_throughput()
        assert tput == pytest.approx(0.30, abs=0.005)
        assert alpha == pytest.approx(1.5, rel=0.02)

    def test_gpipe_optimum_with_recompute_is_0_29(self):
        tput, _ = costmodel.optimal_gpipe_throughput(recompute=True)
        # paper: minimum latency (7/4 + √3)P ⇒ throughput ≈ 0.287
        assert tput == pytest.approx(1.0 / (7 / 4 + np.sqrt(3)), abs=0.005)

    def test_warmup_amortization_matches_table2(self):
        """IWSLT: 10 warmup epochs of 35 ⇒ amortized ≈ 0.6× (Table 2)."""
        tput = costmodel.method_throughput(
            "pipemare", 93, 19, warmup_epochs=10, total_epochs=35
        )
        assert tput == pytest.approx(0.6, abs=0.05)

    def test_wmt_warmup_amortization(self):
        """WMT: 4 warmup epochs of 54 ⇒ ≈ 0.9× (Table 2)."""
        tput = costmodel.method_throughput(
            "pipemare", 91, 16, warmup_epochs=4, total_epochs=54
        )
        assert tput == pytest.approx(0.9, abs=0.05)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            costmodel.gpipe_relative_throughput(0.0)
        with pytest.raises(ValueError):
            costmodel.method_throughput("pipemare", 4, 2, warmup_epochs=1)


class TestMemory:
    def test_table1_weight_memory(self):
        w = 1000
        assert costmodel.weight_memory("gpipe", w, 100, 10) == w
        assert costmodel.weight_memory("pipemare", w, 100, 10) == w
        assert costmodel.weight_memory("pipedream", w, 100, 10) == pytest.approx(
            w + w * 10
        )

    def test_footnote2_t2_overheads(self):
        """T2 adds +33% on SGD state (w,g,m) and +25% on Adam (w,g,m,v)."""
        sgd_base = costmodel.weight_optimizer_memory("pipemare", 1, 10, 2, "sgd")
        sgd_t2 = costmodel.weight_optimizer_memory("pipemare", 1, 10, 2, "sgd", t2=True)
        assert sgd_t2 / sgd_base == pytest.approx(4 / 3)
        adam_base = costmodel.weight_optimizer_memory("pipemare", 1, 10, 2, "adam")
        adam_t2 = costmodel.weight_optimizer_memory("pipemare", 1, 10, 2, "adam", t2=True)
        assert adam_t2 / adam_base == pytest.approx(5 / 4)

    def test_memory_multiplier_pipemare(self):
        """Table 2: PipeMare 1.33× (SGD) and 1.25× (Adam) vs GPipe."""
        assert costmodel.memory_multiplier("pipemare", 107, 8, "sgd", t2=True) == pytest.approx(4 / 3)
        assert costmodel.memory_multiplier("pipemare", 93, 19, "adamw", t2=True) == pytest.approx(5 / 4)

    def test_memory_multiplier_pipedream_grows_with_stages(self):
        m50 = costmodel.memory_multiplier("pipedream", 50, 10, "sgd")
        m200 = costmodel.memory_multiplier("pipedream", 200, 10, "sgd")
        assert m200 > m50 > 1.0
        # linear growth in P (Figure 2/15 middle panel)
        assert (m200 - 1) == pytest.approx(4 * (m50 - 1), rel=1e-6)

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ValueError):
            costmodel.weight_optimizer_memory("gpipe", 1, 2, 2, "rmsprop")

    def test_time_to_accuracy(self):
        assert costmodel.time_to_accuracy(30, 0.3) == pytest.approx(100)
        assert costmodel.time_to_accuracy(float("inf"), 1.0) == float("inf")
        with pytest.raises(ValueError):
            costmodel.time_to_accuracy(10, 0.0)


class TestRecomputeMemory:
    def test_no_recompute_counts(self):
        """Stage i caches 2(P−i)+1 activations (1-indexed)."""
        counts = recompute.per_stage_activation_counts(4)
        np.testing.assert_allclose(counts, [7, 5, 3, 1])

    def test_figure6_shape_16_stages_4_segments(self):
        """Segment heads carry the big input caches; within a segment the
        recompute buffers decay 2(S−j)−1."""
        counts = recompute.per_stage_activation_counts(16, segment_size=4)
        assert counts[0] == (2 * 15 + 1) + 7  # head input cache + own buffer
        np.testing.assert_allclose(counts[1:4], [5, 3, 1])
        assert counts[4] == (2 * 11 + 1) + 7
        # recompute total is far below the no-recompute total
        assert counts.sum() < recompute.per_stage_activation_counts(16).sum()

    def test_total_memory_table4_scaling(self):
        """PipeMare: M·P² without vs O(M·P^{3/2}) with recompute at S=√P.

        The discrete sum carries a constant ≈ 2 (heads ≈ P²/S plus buffers
        ≈ S·P); Table 5's reported ratios use the constant-free asymptotic
        1/√P, which recompute_savings_ratio reproduces.
        """
        p = 100
        no = recompute.total_activation_memory(p)
        s = recompute.optimal_segment_size(p)
        with_r = recompute.total_activation_memory(p, segment_size=s)
        assert no == pytest.approx(p**2)
        assert with_r / no == pytest.approx(2 / np.sqrt(p), rel=0.1)
        # asymptotic exponent check: quadrupling P doubles the ratio gap
        p2 = 400
        r2 = recompute.total_activation_memory(
            p2, segment_size=recompute.optimal_segment_size(p2)
        ) / recompute.total_activation_memory(p2)
        assert r2 == pytest.approx(2 / np.sqrt(p2), rel=0.1)

    def test_optimal_segment_sqrt_p(self):
        assert recompute.optimal_segment_size(100) == 10
        assert recompute.optimal_segment_size(16) == 4
        assert recompute.optimal_segment_size(3) in (1, 2)

    def test_optimal_segment_minimizes_total(self):
        p = 64
        s_star = recompute.optimal_segment_size(p)
        best = recompute.total_activation_memory(p, segment_size=s_star)
        for s in [2, 4, 16, 32]:
            assert best <= recompute.total_activation_memory(p, segment_size=s) * 1.3

    def test_table5_savings_ratios(self):
        """Table 5: 0.097 / 0.104 / 0.105 for P = 107 / 93 / 91."""
        assert recompute.recompute_savings_ratio(107) == pytest.approx(0.097, abs=0.001)
        assert recompute.recompute_savings_ratio(93) == pytest.approx(0.104, abs=0.001)
        assert recompute.recompute_savings_ratio(91) == pytest.approx(0.105, abs=0.001)

    def test_gpipe_recompute_uses_n_at_heads(self):
        counts = recompute.per_stage_activation_counts(
            8, segment_size=4, num_microbatches=16, method="gpipe"
        )
        assert counts[0] == 16 + 7
        assert counts[4] == 16 + 7

    def test_gpipe_needs_microbatches(self):
        with pytest.raises(ValueError):
            recompute.per_stage_activation_counts(8, segment_size=4, method="gpipe")

    def test_recompute_delay_slots(self):
        lags = recompute.recompute_delay_slots(8, 4)
        np.testing.assert_array_equal(lags[:4], [8, 6, 4, 2])
        np.testing.assert_array_equal(lags[4:], [8, 6, 4, 2])

    def test_table4_asymptotics(self):
        t = recompute.table4_asymptotics(100, 16)
        assert t["gpipe"] == 1600
        assert t["gpipe_recompute"] == pytest.approx(400)
        assert t["pipemare"] == 10000
        assert t["pipemare_recompute"] == pytest.approx(1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            recompute.per_stage_activation_counts(4, segment_size=5)
        with pytest.raises(ValueError):
            recompute.recompute_savings_ratio(0)


class TestSchedule:
    def test_gpipe_bubble_fraction_matches_closed_form(self):
        """GPipe idle fraction is (P−1)/(N+P−1) per fill/drain phase."""
        p, n = 4, 8
        sched = build_schedule("gpipe", p, n, num_minibatches=1)
        frac = bubble_fraction(sched)
        assert frac == pytest.approx((p - 1) / (n + p - 1), abs=0.01)

    def test_bubble_free_methods_have_no_steady_state_bubbles(self):
        for method in ("pipemare", "pipedream"):
            sched = build_schedule(method, 4, 8, num_minibatches=4)
            assert bubble_fraction(sched, steady_state_only=True) == 0.0

    def test_tiny_grids_report_no_spurious_steady_state_bubble(self):
        """Regression: grids too small to have a steady-state region used to
        clamp the fill cutoff to the last slot and measure a lone — often
        drain — slot, reporting a nonzero bubble for bubble-free 1F1B."""
        for p, n, m in [(3, 1, 1), (2, 1, 1), (4, 2, 1), (2, 2, 2), (8, 1, 6)]:
            for method in ("pipemare", "pipedream"):
                sched = build_schedule(method, p, n, num_minibatches=m)
                frac = bubble_fraction(sched, steady_state_only=True)
                assert frac == 0.0, f"{method} P={p} N={n} M={m}: {frac}"

    def test_every_microbatch_appears_in_every_stage(self):
        sched = build_schedule("pipemare", 3, 4, num_minibatches=2)
        fwd_counts = (sched.grid == 1).sum(axis=1)
        bkwd_counts = (sched.grid == 2).sum(axis=1)
        assert (fwd_counts == 8).all()
        assert (bkwd_counts == 8).all()

    def test_render_produces_rows(self):
        sched = build_schedule("gpipe", 3, 2, num_minibatches=1)
        text = sched.render()
        assert text.count("\n") == 2
        assert "F" in text and "B" in text

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            build_schedule("gpipe", 0, 2)
