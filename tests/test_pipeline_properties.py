"""Property-based tests for the delay arithmetic and occupancy schedules.

Randomized (P, N) configurations drawn from the canonical ``rng`` fixture
check the invariants the runtime relies on:

* delay slots are positive and strictly monotone (decreasing) in stage
  index; fractional delays match Table 1; version indices are sane;
* schedule grids conserve work — every microbatch appears exactly once as F
  and once as B per stage, in microbatch order, with F before its B;
* the GPipe bubble fraction matches the closed form ``(P−1)/(N+P−1)``;
* the per-stage programs read off the grid are exactly executable: a
  topological replay respecting queue dataflow never stalls.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline import Method, build_schedule, bubble_fraction, stage_programs
from repro.pipeline.delays import DelayProfile


def random_configs(rng, k=25, max_p=12, max_n=12):
    return [
        (int(rng.integers(1, max_p + 1)), int(rng.integers(1, max_n + 1)))
        for _ in range(k)
    ]


class TestDelayProperties:
    def test_slots_positive_and_monotone_in_stage(self, rng):
        for p, n in random_configs(rng):
            profile = DelayProfile(p, n, Method.PIPEMARE)
            slots = [profile.slots_fwd(s) for s in range(p)]
            assert all(s >= 1 for s in slots)
            # earlier stages wait longer: strictly decreasing by 2 per stage
            assert all(a - b == 2 for a, b in zip(slots, slots[1:]))
            taus = profile.tau_fwd_all()
            assert np.all(taus >= 0)
            assert np.all(np.diff(taus) <= 0)

    @pytest.mark.parametrize("method", list(Method))
    def test_versions_nonnegative_and_at_most_current(self, rng, method):
        for p, n in random_configs(rng, k=10, max_p=6, max_n=6):
            profile = DelayProfile(p, n, method)
            for t in (0, 1, 5):
                for s in range(p):
                    for j in range(n):
                        vf = profile.fwd_version(s, t, j)
                        vb = profile.bkwd_version(s, t, j)
                        assert 0 <= vf <= t
                        assert vf <= vb <= t
                        # fwd version monotone in stage: later stages read fresher
                        if s + 1 < p:
                            assert profile.fwd_version(s + 1, t, j) >= vf

    def test_average_lag_matches_table1(self, rng):
        """Empirical mean of ``t − v_fwd`` over a long run equals τ_fwd."""
        for p, n in random_configs(rng, k=8, max_p=6, max_n=6):
            profile = DelayProfile(p, n, Method.PIPEMARE)
            t0, t1 = 2 * p + 2, 2 * p + 2 + 50  # steady state only
            for s in range(p):
                lags = [
                    t - profile.fwd_version(s, t, j)
                    for t in range(t0, t1)
                    for j in range(n)
                ]
                assert np.mean(lags) == pytest.approx(profile.tau_fwd(s))


class TestScheduleConservation:
    @pytest.mark.parametrize("method", list(Method))
    def test_grid_conserves_work(self, rng, method):
        """Every microbatch appears exactly once as F and once as B per
        stage, for randomized P, N."""
        from repro.pipeline.schedule import BACKWARD, FORWARD

        for p, n in random_configs(rng, k=10, max_p=8, max_n=8):
            grid = build_schedule(method, p, n, num_minibatches=2).grid
            for s in range(p):
                assert int((grid[s] == FORWARD).sum()) == 2 * n
                assert int((grid[s] == BACKWARD).sum()) == 2 * n

    @pytest.mark.parametrize("method", list(Method))
    def test_programs_conserve_and_order(self, rng, method):
        for p, n in random_configs(rng, k=10, max_p=8, max_n=8):
            programs = stage_programs(method, p, n)
            for ops in programs:
                fs = [j for op, j in ops if op == "F"]
                bs = [j for op, j in ops if op == "B"]
                assert fs == list(range(n))  # once each, in order
                assert bs == list(range(n))
                for j in range(n):
                    assert ops.index(("F", j)) < ops.index(("B", j))

    def test_recompute_inserted_after_forward(self, rng):
        p, n = 4, int(rng.integers(1, 9))
        programs = stage_programs(Method.PIPEMARE, p, n, recompute=True)
        for ops in programs:
            for j in range(n):
                i = ops.index(("F", j))
                assert ops[i + 1] == ("R", j)

    @pytest.mark.parametrize("method", list(Method))
    def test_programs_replay_without_stalling(self, rng, method):
        """Topological replay: executing every stage's program against queue
        dataflow (F_j needs upstream F_j, B_j needs downstream B_j) must
        drain completely — the deadlock-freedom the runtime relies on."""
        for p, n in random_configs(rng, k=6, max_p=6, max_n=6):
            programs = [list(ops) for ops in stage_programs(method, p, n, recompute=True)]
            done: set[tuple[str, int, int]] = set()
            progressed = True
            while progressed and any(programs):
                progressed = False
                for s in range(p):
                    while programs[s]:
                        op, j = programs[s][0]
                        needs = {
                            "F": ("F", s - 1, j) if s > 0 else None,
                            "R": ("R", s - 1, j) if s > 0 else None,
                            "B": ("B", s + 1, j) if s < p - 1 else None,
                        }[op]
                        if needs is not None and needs not in done:
                            break
                        done.add((op, s, j))
                        programs[s].pop(0)
                        progressed = True
            assert not any(programs), f"schedule stalled at P={p}, N={n}"


class TestBubbleFractions:
    def test_gpipe_bubble_matches_closed_form(self, rng):
        """GPipe idle fraction is exactly (P−1)/(N+P−1) for random P, N."""
        for p, n in random_configs(rng, k=20, max_p=12, max_n=16):
            schedule = build_schedule(Method.GPIPE, p, n, num_minibatches=3)
            expected = (p - 1) / (n + p - 1)
            assert bubble_fraction(schedule) == pytest.approx(expected, abs=1e-12)

    def test_async_steady_state_is_bubble_free(self, rng):
        for p, n in random_configs(rng, k=10, max_p=8, max_n=8):
            schedule = build_schedule(Method.PIPEMARE, p, n, num_minibatches=6)
            assert bubble_fraction(schedule, steady_state_only=True) < 0.35
