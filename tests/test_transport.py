"""Unit tests for the shared-memory transport primitives.

These run the rings in-process (writer/reader endpoints over the same
segments, sometimes on a helper thread) — the cross-process behaviour is
exercised end-to-end by ``tests/test_runtime_process.py``.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.pipeline.transport import (
    SharedGradMailbox,
    ShmRing,
    TransportTimeout,
    stage_block_layout,
)
from repro.pipeline.weight_store import SharedWeightMirror


def unique(name):
    """Per-run shared-memory name: a segment leaked by a killed run (or a
    concurrent session) must not collide with this one."""
    return f"{name}-{os.urandom(4).hex()}"


def make_ring(name, slots=8, slot_bytes=128):
    name = unique(name)
    owner = ShmRing(name, slots=slots, slot_bytes=slot_bytes, create=True)
    w = ShmRing(name, slots=slots, role="send")
    r = ShmRing(name, slots=slots, role="recv")
    return owner, w, r


class TestShmRing:
    def test_roundtrip_preserves_value_shape_dtype(self, rng):
        owner, w, r = make_ring("tring-a")
        try:
            for dtype in (np.float64, np.int64, np.int32, np.bool_):
                arr = (rng.normal(size=(3, 4)) * 10).astype(dtype)
                w.send(arr, step=1, timeout=2.0)
                tag, out = r.recv(2.0)
                assert tag == 1
                assert out.dtype == arr.dtype
                np.testing.assert_array_equal(out, arr)
        finally:
            w.close(); r.close(); owner.unlink()

    def test_layout_preserved_for_transposed_arrays(self, rng):
        """Bit-for-bit equivalence depends on payloads keeping their memory
        layout: BLAS kernels downstream accumulate in a different order for
        transposed inputs (this is how BatchNorm's NCHW intermediates cross
        stage boundaries)."""
        owner, w, r = make_ring("tring-b", slot_bytes=8192)
        try:
            base = rng.normal(size=(4, 6, 5))
            for arr in (base, base.transpose(1, 0, 2), np.asfortranarray(base[0])):
                w.send(arr, step=1, timeout=2.0)
                _, out = r.recv(2.0)
                np.testing.assert_array_equal(out, arr)
                assert out.strides == arr.strides, "memory layout must survive"
            # strided view with gaps: values survive via the C-copy fallback
            view = base[:, ::2, :]
            w.send(view, step=1, timeout=2.0)
            _, out = r.recv(2.0)
            np.testing.assert_array_equal(out, view)
        finally:
            w.close(); r.close(); owner.unlink()

    def test_capacity_grows_for_large_payloads(self, rng):
        owner, w, r = make_ring("tring-c", slot_bytes=64)
        try:
            small = rng.normal(size=(4,))
            big = rng.normal(size=(300,))  # 2400 bytes >> 64
            w.send(small, step=1, timeout=2.0)
            _, out = r.recv(2.0)
            np.testing.assert_array_equal(out, small)
            w.send(big, step=1, timeout=2.0)
            _, out = r.recv(2.0)
            np.testing.assert_array_equal(out, big)
            assert w.slot_bytes >= big.nbytes
        finally:
            w.close(); r.close(); owner.unlink()

    def test_recv_timeout_raises(self):
        owner, w, r = make_ring("tring-d")
        try:
            with pytest.raises(TransportTimeout):
                r.recv(0.05)
        finally:
            w.close(); r.close(); owner.unlink()

    def test_wraparound_under_concurrency(self, rng):
        """Many messages through few slots, with interleaved growth."""
        owner, w, r = make_ring("tring-e", slots=4, slot_bytes=64)
        try:
            def writer():
                g = np.random.default_rng(7)
                for m in range(100):
                    w.send(g.normal(size=(1 + m % 37,)), step=2, timeout=5.0)

            th = threading.Thread(target=writer)
            th.start()
            g = np.random.default_rng(7)
            for m in range(100):
                tag, out = r.recv(5.0)
                assert tag == 2
                np.testing.assert_array_equal(out, g.normal(size=(1 + m % 37,)))
            th.join()
        finally:
            w.close(); r.close(); owner.unlink()

    def test_step_tags_allow_discarding_stale_messages(self, rng):
        """After an aborted step the reader finds old-step residue; the tag
        lets it drop those and resynchronise — the self-healing property the
        process pool relies on."""
        owner, w, r = make_ring("tring-f")
        try:
            w.send(np.zeros(3), step=1, timeout=2.0)  # stale: never consumed in step 1
            w.send(np.ones(3), step=2, timeout=2.0)
            tag, _ = r.recv(2.0)
            assert tag == 1
            tag, out = r.recv(2.0)
            assert tag == 2
            np.testing.assert_array_equal(out, np.ones(3))
        finally:
            w.close(); r.close(); owner.unlink()


class TestStageBlocks:
    def test_layout_offsets_are_aligned_and_disjoint(self):
        shapes = [[(3, 2), (2,)], [(4,)], [(5, 1), (1,)]]
        offsets, total = stage_block_layout(shapes)
        flat = sorted(
            (off, int(np.prod(sh)) * 8)
            for row, srow in zip(offsets, shapes)
            for off, sh in zip(row, srow)
        )
        assert all(off % 8 == 0 for off, _ in flat)
        end = 0
        for off, size in flat:
            assert off >= end
            end = off + size
        assert total == end

    def test_grad_mailbox_roundtrip(self, rng):
        shapes = [[(3, 2), (2,)], [(4,)]]
        name = unique("tmb-a")
        owner = SharedGradMailbox(name, shapes, create=True)
        peer = SharedGradMailbox(name, shapes)
        try:
            g = rng.normal(size=(3, 2))
            peer.write(0, 0, g)
            np.testing.assert_array_equal(owner.read(0, 0), g)
        finally:
            peer.close(); owner.unlink()


class TestSharedWeightMirror:
    def test_publish_and_window_validation(self, rng):
        shapes = [[(3, 2)], [(2,)]]
        name = unique("tmir-a")
        owner = SharedWeightMirror(name, shapes, history=3, with_velocity=False, create=True)
        reader = SharedWeightMirror(name, shapes, history=3, with_velocity=False, readonly=True)
        try:
            versions = {}
            for v in range(5):
                arrays = [[rng.normal(size=(3, 2))], [rng.normal(size=(2,))]]
                versions[v] = arrays
                owner.publish_version(v, arrays)
                assert reader.latest_version == v
            # resident window is the last `history` versions
            for v in (2, 3, 4):
                np.testing.assert_array_equal(reader.weights(0, v)[0], versions[v][0][0])
            with pytest.raises(KeyError):
                reader.weights(0, 1)  # evicted
            with pytest.raises(KeyError):
                reader.weights(0, 5)  # not yet published
        finally:
            reader.close(); owner.unlink()

    def test_reader_views_are_readonly(self, rng):
        shapes = [[(2, 2)]]
        name = unique("tmir-b")
        owner = SharedWeightMirror(name, shapes, history=2, with_velocity=True, create=True)
        reader = SharedWeightMirror(name, shapes, history=2, with_velocity=True, readonly=True)
        try:
            owner.publish_version(0, [[np.eye(2)]])
            owner.publish_velocity([[np.ones((2, 2))]])
            view = reader.weights(0, 0)[0]
            with pytest.raises((ValueError, RuntimeError)):
                view[0, 0] = 99.0
            np.testing.assert_array_equal(reader.velocity(0)[0], np.ones((2, 2)))
        finally:
            reader.close(); owner.unlink()

    def test_velocity_flag_mismatch_rejected(self):
        shapes = [[(2,)]]
        name = unique("tmir-c")
        owner = SharedWeightMirror(name, shapes, history=2, with_velocity=False, create=True)
        try:
            with pytest.raises(ValueError, match="velocity"):
                SharedWeightMirror(name, shapes, history=2, with_velocity=True)
        finally:
            owner.unlink()
