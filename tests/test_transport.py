"""Unit tests for the shared-memory transport primitives.

These run the rings in-process (writer/reader endpoints over the same
segments, sometimes on a helper thread) — the cross-process behaviour is
exercised end-to-end by ``tests/test_runtime_process.py``.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.pipeline.transport import (
    SharedGradMailbox,
    ShmRing,
    TransportTimeout,
    stage_block_layout,
)
from repro.pipeline.weight_store import SharedWeightMirror


def unique(name):
    """Per-run shared-memory name: a segment leaked by a killed run (or a
    concurrent session) must not collide with this one."""
    return f"{name}-{os.urandom(4).hex()}"


def make_ring(name, slots=8, slot_bytes=128):
    name = unique(name)
    owner = ShmRing(name, slots=slots, slot_bytes=slot_bytes, create=True)
    w = ShmRing(name, slots=slots, role="send")
    r = ShmRing(name, slots=slots, role="recv")
    return owner, w, r


class TestShmRing:
    def test_roundtrip_preserves_value_shape_dtype(self, rng):
        owner, w, r = make_ring("tring-a")
        try:
            for dtype in (np.float64, np.int64, np.int32, np.bool_):
                arr = (rng.normal(size=(3, 4)) * 10).astype(dtype)
                w.send(arr, step=1, timeout=2.0)
                tag, out = r.recv(2.0)
                assert tag == 1
                assert out.dtype == arr.dtype
                np.testing.assert_array_equal(out, arr)
        finally:
            w.close(); r.close(); owner.unlink()

    def test_layout_preserved_for_transposed_arrays(self, rng):
        """Bit-for-bit equivalence depends on payloads keeping their memory
        layout: BLAS kernels downstream accumulate in a different order for
        transposed inputs (this is how BatchNorm's NCHW intermediates cross
        stage boundaries)."""
        owner, w, r = make_ring("tring-b", slot_bytes=8192)
        try:
            base = rng.normal(size=(4, 6, 5))
            for arr in (base, base.transpose(1, 0, 2), np.asfortranarray(base[0])):
                w.send(arr, step=1, timeout=2.0)
                _, out = r.recv(2.0)
                np.testing.assert_array_equal(out, arr)
                assert out.strides == arr.strides, "memory layout must survive"
            # strided view with gaps: values survive via the C-copy fallback
            view = base[:, ::2, :]
            w.send(view, step=1, timeout=2.0)
            _, out = r.recv(2.0)
            np.testing.assert_array_equal(out, view)
        finally:
            w.close(); r.close(); owner.unlink()

    def test_capacity_grows_for_large_payloads(self, rng):
        owner, w, r = make_ring("tring-c", slot_bytes=64)
        try:
            small = rng.normal(size=(4,))
            big = rng.normal(size=(300,))  # 2400 bytes >> 64
            w.send(small, step=1, timeout=2.0)
            _, out = r.recv(2.0)
            np.testing.assert_array_equal(out, small)
            w.send(big, step=1, timeout=2.0)
            _, out = r.recv(2.0)
            np.testing.assert_array_equal(out, big)
            assert w.slot_bytes >= big.nbytes
        finally:
            w.close(); r.close(); owner.unlink()

    def test_recv_timeout_raises(self):
        owner, w, r = make_ring("tring-d")
        try:
            with pytest.raises(TransportTimeout):
                r.recv(0.05)
        finally:
            w.close(); r.close(); owner.unlink()

    def test_wraparound_under_concurrency(self, rng):
        """Many messages through few slots, with interleaved growth."""
        owner, w, r = make_ring("tring-e", slots=4, slot_bytes=64)
        try:
            def writer():
                g = np.random.default_rng(7)
                for m in range(100):
                    w.send(g.normal(size=(1 + m % 37,)), step=2, timeout=5.0)

            th = threading.Thread(target=writer)
            th.start()
            g = np.random.default_rng(7)
            for m in range(100):
                tag, out = r.recv(5.0)
                assert tag == 2
                np.testing.assert_array_equal(out, g.normal(size=(1 + m % 37,)))
            th.join()
        finally:
            w.close(); r.close(); owner.unlink()

    def test_fortran_order_survives_unit_dims_and_stride_ties(self, rng):
        """Regression for ``_layout_perm``: axes of size <= 1 carry
        arbitrary strides (relaxed stride checking), so ranking axes by
        raw stride could let a dummy axis scramble the order of the real
        dimensions.  F-order payloads with unit dims must round-trip with
        their layout intact."""
        owner, w, r = make_ring("tring-f", slot_bytes=8192)
        try:
            f2 = np.asfortranarray(rng.normal(size=(4, 6)))
            w.send(f2, step=1, timeout=2.0)
            _, out = r.recv(2.0)
            np.testing.assert_array_equal(out, f2)
            assert out.strides == f2.strides, "F layout must survive"
            # unit leading dim: its stride is meaningless, the real axes'
            # F order must still be reproduced
            f3 = np.asfortranarray(rng.normal(size=(1, 6, 5)))
            w.send(f3, step=1, timeout=2.0)
            _, out = r.recv(2.0)
            np.testing.assert_array_equal(out, f3)
            assert out.flags.f_contiguous
            # dummy axis with a nonsense stride (as reshaped views can
            # carry): data is contiguous, values and real-axis order survive
            base = np.ascontiguousarray(rng.normal(size=(3, 4)))
            weird = np.lib.stride_tricks.as_strided(
                base, shape=(3, 1, 4), strides=(32, 999, 8)
            )
            w.send(weird, step=1, timeout=2.0)
            _, out = r.recv(2.0)
            np.testing.assert_array_equal(out, weird)
            np.testing.assert_array_equal(out.reshape(3, 4), base)
            # all-unit-dims corner: any permutation is valid, none may crash
            one = np.asfortranarray(rng.normal(size=(1, 1)))
            w.send(one, step=1, timeout=2.0)
            _, out = r.recv(2.0)
            np.testing.assert_array_equal(out, one)
        finally:
            w.close(); r.close(); owner.unlink()

    def test_reserve_commit_publishes_without_copy(self, rng):
        """The in-ring compute path: a producer reserves the next slot,
        fills it, and send() publishes it by identity — the consumer sees
        exactly the reserved bytes."""
        owner, w, r = make_ring("tring-rs", slot_bytes=8192)
        try:
            buf = w.reserve((3, 4), np.float64, step=1, timeout=2.0)
            assert buf is not None and buf.shape == (3, 4)
            buf[...] = rng.normal(size=(3, 4))
            expect = buf.copy()
            assert w.commit_if_reserved(buf)
            tag, out = r.recv(2.0)
            assert tag == 1
            np.testing.assert_array_equal(out, expect)
            # a non-reserved payload is NOT published by commit; send()
            # falls back to the copying path after cancelling
            other = rng.normal(size=(3, 4))
            assert not w.commit_if_reserved(other)
            w.cancel_reserved()
            w.send(other, step=2, timeout=2.0)
            tag, out = r.recv(2.0)
            assert tag == 2
            np.testing.assert_array_equal(out, other)
            # unsupported dtypes decline the reservation instead of failing
            assert w.reserve((2,), np.complex128, step=3, timeout=2.0) is None
        finally:
            w.close(); r.close(); owner.unlink()

    def test_recv_view_pins_slot_until_release(self, rng):
        """Zero-copy receive: the consumer gets a read-only view into the
        ring and the slot stays unacked (producer blocks on reuse) until
        the view's token is released."""
        owner, w, r = make_ring("tring-pin", slots=2, slot_bytes=8192)
        try:
            first = rng.normal(size=(4, 3))
            w.send(first, step=1, timeout=2.0)
            tag, view, token = r.recv_msg_view(2.0)
            assert tag == 1 and token is not None
            assert not view.flags.writeable
            np.testing.assert_array_equal(view, first)
            # both slots filled, none acked: the producer must now block
            w.send(rng.normal(size=(4, 3)), step=1, timeout=2.0)
            with pytest.raises(TransportTimeout):
                w.send(rng.normal(size=(4, 3)), step=1, timeout=0.2)
            r.release(token)
            _, _, t2 = r.recv_msg_view(2.0)
            r.release(t2)
            w.send(first * 2, step=1, timeout=2.0)  # slot free again
            _, out, t3 = r.recv_msg_view(2.0)
            np.testing.assert_array_equal(out, first * 2)
            r.release(t3)
        finally:
            w.close(); r.close(); owner.unlink()

    def test_step_tags_allow_discarding_stale_messages(self, rng):
        """After an aborted step the reader finds old-step residue; the tag
        lets it drop those and resynchronise — the self-healing property the
        process pool relies on."""
        owner, w, r = make_ring("tring-f")
        try:
            w.send(np.zeros(3), step=1, timeout=2.0)  # stale: never consumed in step 1
            w.send(np.ones(3), step=2, timeout=2.0)
            tag, _ = r.recv(2.0)
            assert tag == 1
            tag, out = r.recv(2.0)
            assert tag == 2
            np.testing.assert_array_equal(out, np.ones(3))
        finally:
            w.close(); r.close(); owner.unlink()


class TestStageBlocks:
    def test_layout_offsets_are_aligned_and_disjoint(self):
        shapes = [[(3, 2), (2,)], [(4,)], [(5, 1), (1,)]]
        offsets, total = stage_block_layout(shapes)
        flat = sorted(
            (off, int(np.prod(sh)) * 8)
            for row, srow in zip(offsets, shapes)
            for off, sh in zip(row, srow)
        )
        assert all(off % 8 == 0 for off, _ in flat)
        end = 0
        for off, size in flat:
            assert off >= end
            end = off + size
        assert total == end

    def test_grad_mailbox_roundtrip(self, rng):
        shapes = [[(3, 2), (2,)], [(4,)]]
        name = unique("tmb-a")
        owner = SharedGradMailbox(name, shapes, create=True)
        peer = SharedGradMailbox(name, shapes)
        try:
            g = rng.normal(size=(3, 2))
            peer.write(0, 0, g, seq=1)
            np.testing.assert_array_equal(owner.read(0, 0, seq=1), g)
            # The parity double-buffer keeps two steps' blocks disjoint:
            # writing the next step must not disturb the previous one.
            g2 = rng.normal(size=(3, 2))
            peer.write(0, 0, g2, seq=2)
            np.testing.assert_array_equal(owner.read(0, 0, seq=2), g2)
            np.testing.assert_array_equal(owner.read(0, 0, seq=1), g)
        finally:
            peer.close(); owner.unlink()


class TestSharedWeightMirror:
    def test_publish_and_window_validation(self, rng):
        shapes = [[(3, 2)], [(2,)]]
        name = unique("tmir-a")
        owner = SharedWeightMirror(name, shapes, history=3, with_velocity=False, create=True)
        reader = SharedWeightMirror(name, shapes, history=3, with_velocity=False, readonly=True)
        try:
            versions = {}
            for v in range(5):
                arrays = [[rng.normal(size=(3, 2))], [rng.normal(size=(2,))]]
                versions[v] = arrays
                owner.publish_version(v, arrays)
                assert reader.latest_version == v
            # resident window is the last `history` versions
            for v in (2, 3, 4):
                np.testing.assert_array_equal(reader.weights(0, v)[0], versions[v][0][0])
            with pytest.raises(KeyError):
                reader.weights(0, 1)  # evicted
            with pytest.raises(KeyError):
                reader.weights(0, 5)  # not yet published
        finally:
            reader.close(); owner.unlink()

    def test_reader_views_are_readonly(self, rng):
        shapes = [[(2, 2)]]
        name = unique("tmir-b")
        owner = SharedWeightMirror(name, shapes, history=2, with_velocity=True, create=True)
        reader = SharedWeightMirror(name, shapes, history=2, with_velocity=True, readonly=True)
        try:
            owner.publish_version(0, [[np.eye(2)]])
            owner.publish_velocity([[np.ones((2, 2))]])
            view = reader.weights(0, 0)[0]
            with pytest.raises((ValueError, RuntimeError)):
                view[0, 0] = 99.0
            np.testing.assert_array_equal(reader.velocity(0)[0], np.ones((2, 2)))
        finally:
            reader.close(); owner.unlink()

    def test_velocity_flag_mismatch_rejected(self):
        shapes = [[(2,)]]
        name = unique("tmir-c")
        owner = SharedWeightMirror(name, shapes, history=2, with_velocity=False, create=True)
        try:
            with pytest.raises(ValueError, match="velocity"):
                SharedWeightMirror(name, shapes, history=2, with_velocity=True)
        finally:
            owner.unlink()
