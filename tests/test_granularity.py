"""Differential tests for sublayer-granular stage graphs and the
profile-guided balanced partitioner.

The acceptance bar of the granularity refactor: at ``sublayer`` granularity
the Transformer runs with strictly more workers than encoder+decoder
layers, and the differential grids (method × technique × thread/process ×
overlap) stay bit-for-bit equal to the sequential simulator at both
granularities and every partition mode (even / auto / profile).  The
partitioner's plan is computed once per workload and shipped through
``ModelSpec``, so process workers must rebuild identical placements.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.experiments.workloads import make_image_workload, make_translation_workload
from repro.models.resnet import resnet_tiny
from repro.models.transformer import transformer_tiny
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.pipeline import (
    AsyncPipelineRuntime,
    Partitioner,
    PipelineExecutor,
    build_worker_graph,
    partition_model,
)
from repro.pipeline.executor import param_groups_from_stages
from repro.pipeline.stage_compute import flatten_graph


def small_translation(preset="iwslt", **overrides):
    kw = dict(batches_per_epoch=4, batch_size=16, num_microbatches=4, eval_size=8)
    kw.update(overrides)
    return make_translation_workload(preset, **kw)


def translation_batches(workload, n=4, batch=16, seed=5):
    rng = np.random.default_rng(seed)
    saved = workload.task.rng
    workload.task.rng = rng
    batches = [workload.task.sample_batch(batch) for _ in range(n)]
    workload.task.rng = saved
    return batches


def assert_translation_equivalent(workload, runtime, steps=4, **bundle_kw):
    batches = translation_batches(workload, n=steps)
    b_sim = workload.bundle(runtime="simulator", seed=0, **bundle_kw)
    b_rt = workload.bundle(runtime=runtime, seed=0, **bundle_kw)
    try:
        for i, bt in enumerate(batches):
            l1 = b_sim.executor.train_step((bt.src, bt.tgt_in), bt.tgt_out)
            l2 = b_rt.executor.train_step((bt.src, bt.tgt_in), bt.tgt_out)
            assert l1 == l2, f"step {i}: simulator {l1!r} != {runtime} {l2!r}"
        b_rt.executor.sync()
        for p1, p2 in zip(b_sim.model.parameters(), b_rt.model.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)
        return b_rt.executor.num_workers
    finally:
        b_rt.executor.close()


@pytest.fixture(scope="module")
def iwslt():
    return small_translation("iwslt")


@pytest.fixture(scope="module")
def wmt():
    return small_translation("wmt")


class TestSublayerStructure:
    @pytest.mark.parametrize("share", [False, True])
    def test_transformer_sublayer_yields_more_workers_than_layers(self, share):
        """§4.1's direction made concrete: the finest sublayer partition
        runs with strictly more workers than encoder+decoder layers (and
        strictly more than the layer-granularity slicing gives)."""
        model = transformer_tiny(np.random.default_rng(0), share_embeddings=share)
        stages = partition_model(model, None)
        layers = model.cfg.num_encoder_layers + model.cfg.num_decoder_layers
        coarse = build_worker_graph(model, stages, granularity="layer")
        fine = build_worker_graph(model, stages, granularity="sublayer")
        assert fine.num_workers > layers
        assert fine.num_workers > coarse.num_workers

    def test_resnet_sublayer_yields_more_workers_than_blocks(self):
        model = resnet_tiny(np.random.default_rng(0))
        stages = partition_model(model, None)
        blocks = len(model.body.layers)
        coarse = build_worker_graph(model, stages, granularity="layer")
        fine = build_worker_graph(model, stages, granularity="sublayer")
        assert fine.num_workers > blocks
        assert fine.num_workers > coarse.num_workers

    def test_sublayer_elements_split_attention_from_ffn(self):
        model = transformer_tiny(np.random.default_rng(0))
        graph = flatten_graph(model, granularity="sublayer")
        names = [type(e).__name__ for n in graph.nodes for e in n.elements]
        assert "_EncoderAttnSlice" in names and "_EncoderFFNSlice" in names
        assert "_DecoderCrossAttnSlice" in names

    def test_models_without_sublayer_slicing_degrade_to_layer(self):
        from repro.models import MLP

        model = MLP([4, 4, 4, 2], np.random.default_rng(0))
        a = flatten_graph(model, granularity="layer")
        b = flatten_graph(model, granularity="sublayer")
        assert len(a.nodes[0].elements) == len(b.nodes[0].elements)

    def test_unknown_granularity_rejected(self):
        model = transformer_tiny(np.random.default_rng(0))
        with pytest.raises(ValueError, match="granularity"):
            flatten_graph(model, granularity="tensor")


class TestThreadGranularityGrid:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    def test_methods_match_bitwise_sublayer(self, iwslt, method):
        workers = assert_translation_equivalent(
            iwslt, "async", method=method, granularity="sublayer"
        )
        assert workers > 4  # encoder+decoder layers

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("technique", ["t1t2", "t3", "recompute"])
    def test_techniques_match_bitwise_sublayer(self, iwslt, technique):
        kw = {
            "t1t2": dict(pipemare=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5)),
            "t3": dict(
                pipemare=PipeMareConfig.full(anneal_steps=50, warmup_steps=2, decay=0.5)
            ),
            "recompute": dict(
                pipemare=PipeMareConfig.t2_only(decay=0.5), recompute_segment=2
            ),
        }[technique]
        assert_translation_equivalent(
            iwslt, "async", method="pipemare", granularity="sublayer", **kw
        )

    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("partition", ["even", "auto", "profile"])
    @pytest.mark.parametrize("granularity", ["layer", "sublayer"])
    def test_partition_modes_match_bitwise(self, iwslt, granularity, partition):
        assert_translation_equivalent(
            iwslt, "async", method="pipemare",
            pipemare=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5),
            granularity=granularity, partition=partition,
        )

    @pytest.mark.timeout(120)
    def test_overlap_off_matches_bitwise_sublayer(self, iwslt):
        assert_translation_equivalent(
            iwslt, "async", method="pipemare", granularity="sublayer",
            partition="auto", overlap_boundary=False,
        )

    @pytest.mark.timeout(180)
    def test_finest_sublayer_partition_deepens_tau(self):
        """The finest partition (one stage per weight unit — 45 for the
        tiny Transformer) at sublayer granularity: the delay profile picks
        up the deep stage count, so T1+T2 compensate a much larger τ than
        any layer-granularity worker count ever exercised — and the
        trajectory still matches the simulator bit-for-bit."""
        workload = small_translation("iwslt", default_stages=None)
        batches = translation_batches(workload, n=3)
        b_sim = workload.bundle(
            runtime="simulator", seed=0, num_stages=None,
            pipemare=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5),
            granularity="sublayer",
        )
        assert len(b_sim.executor.stages) == 45
        b_rt = workload.bundle(
            runtime="async", seed=0, num_stages=None,
            pipemare=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5),
            granularity="sublayer",
        )
        try:
            assert b_rt.executor.num_workers > 4
            for bt in batches:
                l1 = b_sim.executor.train_step((bt.src, bt.tgt_in), bt.tgt_out)
                l2 = b_rt.executor.train_step((bt.src, bt.tgt_in), bt.tgt_out)
                assert l1 == l2
            b_rt.executor.sync()
            for p1, p2 in zip(b_sim.model.parameters(), b_rt.model.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)
        finally:
            b_rt.executor.close()


class TestProcessGranularityGrid:
    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("partition", ["even", "auto"])
    def test_process_sublayer_matches_bitwise(self, iwslt, partition):
        workers = assert_translation_equivalent(
            iwslt, "process", method="pipemare", granularity="sublayer",
            partition=partition,
        )
        assert workers > 4

    @pytest.mark.timeout(180)
    def test_process_shared_embeddings_sublayer_profile(self, wmt):
        """Tied embedding + tied projection across process boundaries at
        sublayer granularity, with a profiled plan shipped via ModelSpec —
        replicas must rebuild the driver's exact placement."""
        assert_translation_equivalent(
            wmt, "process", method="pipemare", granularity="sublayer",
            partition="profile",
            pipemare=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5),
        )


class TestWorkerCoalescing:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("max_workers", [1, 3])
    def test_coalesced_workers_match_bitwise(self, max_workers):
        """max_workers replaces the one-worker-per-primary-stage rule: a
        deep (large τ) partition runs on few workers, bit-for-bit."""
        x = np.random.default_rng(0).normal(size=(16, 3, 8, 8))
        y = np.random.default_rng(1).integers(0, 10, size=16)
        models, backends = [], []
        for cls, kw in (
            (PipelineExecutor, {}),
            (AsyncPipelineRuntime, {"granularity": "sublayer", "max_workers": max_workers}),
        ):
            model = resnet_tiny(np.random.default_rng(1))
            stages = partition_model(model, 8)
            opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
            backends.append(
                cls(model, CrossEntropyLoss(), opt, stages, 4, "pipemare", **kw)
            )
            models.append(model)
        ex, rt = backends
        with rt:
            assert rt.num_workers == max_workers
            for _ in range(3):
                assert ex.train_step(x, y) == rt.train_step(x, y)
            rt.sync()
            for p1, p2 in zip(models[0].parameters(), models[1].parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)

    def test_invalid_max_workers_rejected(self):
        model = resnet_tiny(np.random.default_rng(1))
        stages = partition_model(model, 4)
        with pytest.raises(ValueError, match="max_workers"):
            build_worker_graph(model, stages, max_workers=0)


class TestImageWorkloadGranularity:
    @pytest.mark.timeout(120)
    def test_cifar_async_sublayer_auto_matches(self):
        iw = make_image_workload("cifar")
        x, y = iw.data.train_x[:16], iw.data.train_y[:16]
        b_sim = iw.bundle(
            runtime="simulator", seed=0, granularity="sublayer",
            partition="auto", num_stages=8,
        )
        b_rt = iw.bundle(
            runtime="async", seed=0, granularity="sublayer",
            partition="auto", num_stages=8,
        )
        try:
            for _ in range(3):
                assert b_sim.executor.train_step(x, y) == b_rt.executor.train_step(x, y)
            b_rt.executor.sync()
            for p1, p2 in zip(b_sim.model.parameters(), b_rt.model.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)
        finally:
            b_rt.executor.close()

    def test_plan_cache_shared_across_bundles(self):
        """Two bundles of one workload must consume the same plan object —
        profile mode would otherwise re-time and desynchronize stage
        boundaries between the simulator and the runtime."""
        iw = make_image_workload("cifar")
        p1 = iw.partition_plan(iw.build_model(0), 6, "sublayer", "profile")
        p2 = iw.partition_plan(iw.build_model(1), 6, "sublayer", "profile")
        assert p1 is p2
