"""Tests for the sequential trainer, pipeline trainer, evaluation helpers,
and the Hogwild! stochastic-delay executor."""

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.data import TranslationTask, batch_iterator
from repro.hogwild import HogwildExecutor, TruncatedExponentialDelays
from repro.models import MLP, transformer_tiny
from repro.nn import CrossEntropyLoss
from repro.optim import SGD, ConstantLR
from repro.pipeline import PipelineExecutor, partition_model
from repro.pipeline.executor import param_groups_from_stages
from repro.train import (
    PipelineTrainer,
    SequentialTrainer,
    evaluate_classifier,
    evaluate_translation,
)
from repro.train.trainer import parameter_norm


def toy_data(rng, d=6, c=3, n=96):
    centers = rng.normal(size=(c, d)) * 2
    y = rng.integers(0, c, size=n)
    x = centers[y] + rng.normal(size=(n, d))
    return x, y


class TestSequentialTrainer:
    def test_loss_decreases(self, rng):
        x, y = toy_data(rng)
        m = MLP([6, 16, 3], np.random.default_rng(1))
        tr = SequentialTrainer(m, CrossEntropyLoss(), SGD(m.parameters(), lr=0.1, momentum=0.9))
        first = tr.train_step(x, y)
        for _ in range(40):
            last = tr.train_step(x, y)
        assert last < first / 2

    def test_microbatching_matches_full_batch(self, rng):
        x, y = toy_data(rng)
        m1 = MLP([6, 8, 3], np.random.default_rng(2))
        m2 = MLP([6, 8, 3], np.random.default_rng(2))
        t1 = SequentialTrainer(m1, CrossEntropyLoss(), SGD(m1.parameters(), lr=0.1), num_microbatches=1)
        t2 = SequentialTrainer(m2, CrossEntropyLoss(), SGD(m2.parameters(), lr=0.1), num_microbatches=4)
        for i in range(4):
            b = slice(i * 24, (i + 1) * 24)
            t1.train_step(x[b], y[b])
            t2.train_step(x[b], y[b])
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_allclose(p1.data, p2.data, atol=1e-12)

    def test_base_schedule_applied(self, rng):
        x, y = toy_data(rng)
        m = MLP([6, 8, 3], np.random.default_rng(2))
        opt = SGD(m.parameters(), lr=99.0)
        tr = SequentialTrainer(m, CrossEntropyLoss(), opt, base_schedule=ConstantLR(0.01))
        tr.train_step(x, y)
        assert opt.lr == 0.01

    def test_history_recorded(self, rng):
        x, y = toy_data(rng)
        m = MLP([6, 8, 3], np.random.default_rng(2))
        tr = SequentialTrainer(m, CrossEntropyLoss(), SGD(m.parameters(), lr=0.05))
        tr.train_step(x, y)
        assert len(tr.history.series("train_loss")) == 1

    def test_parameter_norm(self, rng):
        m = MLP([2, 2], np.random.default_rng(0))
        expected = np.sqrt(sum(float((p.data**2).sum()) for p in m.parameters()))
        assert parameter_norm(m) == pytest.approx(expected)


class TestPipelineTrainer:
    def _trainer(self, rng, epochs_data=None, method="pipemare"):
        x, y = toy_data(rng)
        m = MLP([6, 8, 3], np.random.default_rng(2))
        loss = CrossEntropyLoss()
        stages = partition_model(m)
        opt = SGD(param_groups_from_stages(stages), lr=0.02)
        ex = PipelineExecutor(m, loss, opt, stages, 2, method,
                              pipemare=PipeMareConfig.t1_only(20))

        def batch_fn(rng_epoch):
            return batch_iterator(x, y, 24, rng_epoch)

        def eval_fn():
            return evaluate_classifier(m, x, y)

        return PipelineTrainer(ex, batch_fn, eval_fn, seed=0)

    def test_runs_and_tracks(self, rng):
        tr = self._trainer(rng)
        res = tr.run(epochs=3)
        assert len(res.tracker) == 3
        assert not res.diverged
        assert res.meta["method"] == "pipemare"
        assert len(res.history.series("train_loss")) == 3
        assert len(res.history.series("eval_metric")) == 3

    def test_eval_every(self, rng):
        tr = self._trainer(rng)
        res = tr.run(epochs=4, eval_every=2)
        # metric still recorded every epoch (carrying forward)
        assert len(res.tracker) == 4

    def test_divergence_aborts(self, rng):
        tr = self._trainer(rng)
        tr.divergence_norm = 1e-9  # force immediate "divergence"
        res = tr.run(epochs=5)
        assert res.diverged
        assert len(res.tracker) == 1
        assert res.epochs_to_target(0.0) == float("inf")

    def test_rejects_zero_epochs(self, rng):
        with pytest.raises(ValueError):
            self._trainer(rng).run(epochs=0)


class TestEvaluate:
    def test_classifier_eval_mode_restored(self, rng):
        x, y = toy_data(rng)
        m = MLP([6, 8, 3], np.random.default_rng(2))
        m.train()
        evaluate_classifier(m, x, y)
        assert m.training

    def test_translation_eval_perfect_model_scores_high(self, rng):
        """A model forced to emit the reference scores BLEU 100; here we
        check the plumbing with an untrained model instead (low BLEU)."""
        t = TranslationTask(vocab_size=16)
        m = transformer_tiny(rng, vocab=16)
        pairs = t.fixed_eval_set(8)
        score = evaluate_translation(m, t, pairs)
        assert 0.0 <= score < 50.0


class TestTruncatedExponentialDelays:
    def test_sample_bounds(self):
        d = TruncatedExponentialDelays([5.0, 1.0, 0.0], tau_max=8, rng=np.random.default_rng(0))
        for _ in range(50):
            s = d.sample()
            assert s.shape == (3,)
            assert (s >= 0).all() and (s <= 8).all()
            assert s[2] == 0  # zero-mean stage never delayed

    def test_larger_mean_larger_delays(self):
        d = TruncatedExponentialDelays([8.0, 0.5], tau_max=20, rng=np.random.default_rng(0))
        samples = np.array([d.sample() for _ in range(500)])
        assert samples[:, 0].mean() > samples[:, 1].mean() + 2

    def test_expected_delays_truncation(self):
        d = TruncatedExponentialDelays([4.0], tau_max=1000)
        # barely truncated: expectation ≈ mean
        assert d.expected_delays()[0] == pytest.approx(4.0, rel=1e-3)
        d2 = TruncatedExponentialDelays([4.0], tau_max=2)
        assert d2.expected_delays()[0] < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedExponentialDelays([], 5)
        with pytest.raises(ValueError):
            TruncatedExponentialDelays([-1.0], 5)
        with pytest.raises(ValueError):
            TruncatedExponentialDelays([1.0], -1)


class TestHogwildExecutor:
    def _exec(self, rng, anneal_steps=None, tau_max=4):
        x, y = toy_data(rng)
        m = MLP([6, 10, 3], np.random.default_rng(2))
        loss = CrossEntropyLoss()
        stages = partition_model(m)
        delays = TruncatedExponentialDelays(
            [2.0, 1.0], tau_max=tau_max, rng=np.random.default_rng(1)
        )
        opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
        return HogwildExecutor(m, loss, opt, stages, delays, anneal_steps=anneal_steps), m, x, y

    def test_trains(self, rng):
        ex, m, x, y = self._exec(rng)
        first = ex.train_step(x, y)
        for _ in range(60):
            last = ex.train_step(x, y)
        assert last < first

    def test_zero_delay_matches_sequential(self, rng):
        """With τ_max=0 every read is the current version ⇒ identical to
        synchronous SGD."""
        x, y = toy_data(rng)
        m1 = MLP([6, 10, 3], np.random.default_rng(2))
        m2 = MLP([6, 10, 3], np.random.default_rng(2))
        stages = partition_model(m1)
        delays = TruncatedExponentialDelays([2.0, 1.0], tau_max=0)
        ex = HogwildExecutor(
            m1, CrossEntropyLoss(), SGD(param_groups_from_stages(stages), lr=0.05),
            stages, delays,
        )
        seq = SequentialTrainer(m2, CrossEntropyLoss(), SGD(m2.parameters(), lr=0.05))
        for _ in range(5):
            ex.train_step(x, y)
            seq.train_step(x, y)
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_t1_reduces_effective_lr_early(self, rng):
        ex, m, x, y = self._exec(rng, anneal_steps=50)
        ex.train_step(x, y)
        scales = [g.lr_scale for g in ex.optimizer.groups]
        assert scales[0] < 1.0

    def test_stage_mismatch_rejected(self, rng):
        x, y = toy_data(rng)
        m = MLP([6, 10, 3], np.random.default_rng(2))
        stages = partition_model(m)
        delays = TruncatedExponentialDelays([1.0], tau_max=2)  # 1 stage vs 2
        with pytest.raises(ValueError):
            HogwildExecutor(
                m, CrossEntropyLoss(), SGD(param_groups_from_stages(stages), lr=0.05),
                stages, delays,
            )
