"""Hybrid data × pipeline parallelism: replica groups behind the scheduler.

With ``num_replicas=R`` every backend runs R complete pipeline replicas
sharing one version clock: each replica trains on its own 1/R shard of
every minibatch, replica gradients fold into one optimizer step per
minibatch (canonical ascending-index order, normalized by n·R), and all
replicas read weight versions from the one shared store — so the delay
profile, and therefore the trajectory's staleness, is *unchanged for any
R*.  This file pins down

* the replica differential grids: simulator vs thread vs process groups,
  bit for bit on losses and final weights, at R ∈ {1, 2, 3} across
  methods, techniques (T1/T2/T3, recompute) and both boundary modes;
* that ``num_replicas=1`` is plain pipeline parallelism — bit-identical
  to a runtime built without the knob at all;
* fold determinism: gradient folding is a function of replica indices,
  never of completion order, so permuted arrival interleavings and
  repeated concurrent runs produce identical bits;
* the unified ``check_replica_count`` validation path (including the
  worker-budget clause) from every entry point.

Every test carries the ``hybrid`` marker: CI runs ``-m hybrid`` as a
dedicated lane with a tightened ``--timeout`` (mirroring the ``overlap``
lane) so a replica-lockstep bug — one pool's step never collecting —
surfaces as a timeout failure, not a hung job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.pipeline import (
    AsyncPipelineRuntime,
    PipelineExecutor,
    ReplicaPlan,
    check_replica_count,
    make_backend,
    partition_model,
)
from repro.pipeline.executor import param_groups_from_stages
from repro.pipeline.plan import StepPlan

pytestmark = pytest.mark.hybrid

TIMEOUT = 15.0  # deadlock timeout for every concurrent runtime in this file


def toy_classification(rng, d=6, c=3, n=144):
    centers = rng.normal(size=(c, d)) * 2
    y = rng.integers(0, c, size=n)
    x = centers[y] + rng.normal(size=(n, d))
    return x, y


def build(cls, method="pipemare", *, replicas, num_stages=4, num_microbatches=2,
          cfg=None, seed=7, **kw):
    model = MLP([6, 8, 8, 8, 3], np.random.default_rng(seed))
    stages = partition_model(model, num_stages)
    opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
    backend = cls(
        model, CrossEntropyLoss(), opt, stages, num_microbatches, method,
        pipemare=cfg, num_replicas=replicas, **kw,
    )
    return model, backend


def run_steps(backend, x, y, steps, batch=24):
    losses = []
    for i in range(steps):
        b = slice(i * batch, (i + 1) * batch)
        losses.append(backend.train_step(x[b], y[b]))
    if hasattr(backend, "sync"):
        backend.sync()
    return losses


TECHNIQUES = {
    "plain": dict(cfg=None, kw={}),
    "t1t2": dict(cfg=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5), kw={}),
    "t3": dict(
        cfg=PipeMareConfig.full(anneal_steps=50, warmup_steps=2, decay=0.5), kw={}
    ),
    "recompute": dict(
        cfg=PipeMareConfig.t2_only(decay=0.5), kw={"recompute_segment": 2}
    ),
}


class TestReplicaDifferential:
    """simulator vs thread vs process replica groups — exact to the bit."""

    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("replicas", [1, 2, 3])
    def test_replica_counts_match_bitwise(self, rng, backend, replicas):
        """The R-replica concurrent group reproduces the R-replica
        simulator exactly (pipemare + T1/T2, overlapped boundary)."""
        x, y = toy_classification(rng)
        cfg = PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5)
        m1, sim = build(PipelineExecutor, cfg=cfg, replicas=replicas)
        m2, rt = build(
            AsyncPipelineRuntime, cfg=cfg, replicas=replicas, backend=backend,
            deadlock_timeout=TIMEOUT,
        )
        with rt:
            assert run_steps(sim, x, y, 5) == run_steps(rt, x, y, 5)
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    def test_methods_match_bitwise_both_boundary_modes(self, rng, method):
        """At R=2, barrier and overlapped thread groups both reproduce the
        simulator for every delay profile."""
        x, y = toy_classification(rng)
        runs = {}
        for label, kw in (
            ("simulator", None),
            ("barrier", {"overlap_boundary": False}),
            ("overlap", {"overlap_boundary": True}),
        ):
            if kw is None:
                model, be = build(PipelineExecutor, method, replicas=2)
            else:
                model, be = build(
                    AsyncPipelineRuntime, method, replicas=2,
                    deadlock_timeout=TIMEOUT, **kw,
                )
            try:
                losses = run_steps(be, x, y, 5)
                runs[label] = (losses, [p.data.copy() for p in model.parameters()])
            finally:
                if hasattr(be, "close"):
                    be.close()
        ref_losses, ref_weights = runs["simulator"]
        for label in ("barrier", "overlap"):
            losses, weights = runs[label]
            assert losses == ref_losses, f"{label} losses diverged"
            for p, q in zip(weights, ref_weights):
                np.testing.assert_array_equal(p, q, err_msg=label)

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    def test_techniques_match_bitwise(self, rng, technique):
        """T1/T2 velocity reads, T3's sync→async transition and recompute
        all resolve identically through the shared version clock at R=2."""
        x, y = toy_classification(rng)
        spec = TECHNIQUES[technique]
        m1, sim = build(PipelineExecutor, cfg=spec["cfg"], replicas=2, **spec["kw"])
        m2, rt = build(
            AsyncPipelineRuntime, cfg=spec["cfg"], replicas=2,
            deadlock_timeout=TIMEOUT, **spec["kw"],
        )
        with rt:
            assert run_steps(sim, x, y, 5) == run_steps(rt, x, y, 5)
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)

    @pytest.mark.timeout(120)
    def test_process_group_shares_one_mailbox_and_mirror(self, rng):
        """The replica pools attach to one shared weight mirror and one
        replica-striped gradient mailbox — owner creates, copies attach."""
        x, y = toy_classification(rng)
        m, rt = build(
            AsyncPipelineRuntime, replicas=2, backend="process",
            deadlock_timeout=TIMEOUT,
        )
        with rt:
            pools = rt.group.pools
            assert pools[0].mirror is pools[1].mirror
            assert pools[0].mailbox is pools[1].mailbox
            assert pools[0]._owns_shared and not pools[1]._owns_shared
            run_steps(rt, x, y, 2)


class TestReplicaOneIsPlainPipeline:
    """``num_replicas=1`` must be the pre-hybrid runtime, bit for bit."""

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("runtime", ["simulator", "async", "process"])
    def test_explicit_r1_matches_omitted_knob(self, rng, runtime):
        x, y = toy_classification(rng)

        def trajectory(pass_knob: bool):
            model = MLP([6, 8, 8, 8, 3], np.random.default_rng(7))
            stages = partition_model(model, 4)
            opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
            kw = dict(deadlock_timeout=TIMEOUT) if runtime != "simulator" else {}
            if pass_knob:
                kw["num_replicas"] = 1
            be = make_backend(
                runtime, model, CrossEntropyLoss(), opt, stages, 2, "pipemare",
                **kw,
            )
            try:
                losses = run_steps(be, x, y, 4)
            finally:
                if hasattr(be, "close"):
                    be.close()
            return losses, [p.data.copy() for p in model.parameters()]

        losses_a, weights_a = trajectory(pass_knob=False)
        losses_b, weights_b = trajectory(pass_knob=True)
        assert losses_a == losses_b
        for p, q in zip(weights_a, weights_b):
            np.testing.assert_array_equal(p, q)

    def test_r1_runs_a_single_pool(self, rng):
        m, rt = build(AsyncPipelineRuntime, replicas=1, deadlock_timeout=TIMEOUT)
        with rt:
            assert rt.group.num_replicas == 1
            assert rt.group.pools == [rt.pool]
            assert rt.replica_plan.replicas == []


class TestFoldDeterminism:
    """The fold's addition order depends on replica indices only — never on
    which replica's gradients arrived first."""

    def _folded(self, plan, rp, contributions, arrival):
        """Accumulate per-(replica, microbatch) contributions in the given
        global arrival interleaving (each replica's own microbatch order is
        preserved — that part the schedule guarantees), fold, and return
        the folded driver gradients."""
        all_params = [plan.params] + [rep.params for rep in rp.replicas]
        for params in all_params:
            for p in params:
                p.grad[...] = 0.0
        for r, j in arrival:
            for p, g in zip(all_params[r], contributions[r][j]):
                p.grad += g
        rp.fold_replica_grads()
        return [p.grad.copy() for p in plan.params]

    def test_fold_is_arrival_order_invariant(self, rng):
        model = MLP([6, 8, 8, 8, 3], np.random.default_rng(3))
        stages = partition_model(model, 4)
        plan = StepPlan(
            params=model.parameters(),
            optimizer=SGD(param_groups_from_stages(stages), lr=0.1),
            stages=stages,
            num_microbatches=2,
            method="pipemare",
            num_replicas=3,
        )
        rp = ReplicaPlan(plan, model, CrossEntropyLoss())
        contributions = [
            [
                [rng.normal(size=p.data.shape) for p in params]
                for _ in range(plan.num_microbatches)
            ]
            for params in [plan.params] + [rep.params for rep in rp.replicas]
        ]
        # Replica-major vs round-robin vs reversed-replica interleavings: a
        # fold that accumulated arrivals straight into the driver's buffers
        # would differ between these at the last float bit (FP addition is
        # not associative); per-replica accumulation + ascending-index fold
        # must not.
        orders = [
            [(r, j) for r in range(3) for j in range(2)],
            [(r, j) for j in range(2) for r in range(3)],
            [(r, j) for r in (2, 1, 0) for j in range(2)],
        ]
        reference = self._folded(plan, rp, contributions, orders[0])
        for arrival in orders[1:]:
            for g, ref in zip(self._folded(plan, rp, contributions, arrival), reference):
                np.testing.assert_array_equal(g, ref)
        # and the copies' buffers are zeroed, ready for the next step
        for rep in rp.replicas:
            assert all((p.grad == 0.0).all() for p in rep.params)

    @pytest.mark.timeout(180)
    def test_thread_group_repeats_bit_identically(self, rng):
        """Thread completion order is scheduler noise; two full R=3 runs
        must still produce identical losses and weights."""
        x, y = toy_classification(rng)

        def run():
            m, rt = build(
                AsyncPipelineRuntime, replicas=3, deadlock_timeout=TIMEOUT
            )
            with rt:
                losses = run_steps(rt, x, y, 5)
            return losses, [p.data.copy() for p in m.parameters()]

        losses_a, weights_a = run()
        losses_b, weights_b = run()
        assert losses_a == losses_b
        for p, q in zip(weights_a, weights_b):
            np.testing.assert_array_equal(p, q)


class TestReplicaValidation:
    """One ``check_*``-style ValueError from every entry point."""

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_check_rejects_non_positive_counts(self, bad):
        with pytest.raises(ValueError, match=f"num_replicas must be >= 1, got {bad}"):
            check_replica_count(bad)

    def test_worker_budget_clause_names_model_and_arithmetic(self):
        with pytest.raises(ValueError) as err:
            check_replica_count(
                3, model_name="ResNet", workers_per_replica=4, worker_budget=10
            )
        msg = str(err.value)
        assert "ResNet" in msg
        assert "3 x 4 = 12 > 10" in msg
        # within budget: no error
        check_replica_count(
            2, model_name="ResNet", workers_per_replica=4, worker_budget=10
        )

    @pytest.mark.parametrize("runtime", ["simulator", "async", "process"])
    def test_backend_constructors_validate(self, runtime):
        with pytest.raises(ValueError, match="num_replicas must be >= 1"):
            build(
                AsyncPipelineRuntime if runtime != "simulator" else PipelineExecutor,
                replicas=0,
                **({} if runtime == "simulator" else {
                    "backend": {"async": "thread"}.get(runtime, runtime),
                    "deadlock_timeout": TIMEOUT,
                }),
            )

    def test_workload_entry_point_validates(self):
        from repro.experiments.workloads import make_image_workload

        workload = make_image_workload("cifar")
        with pytest.raises(ValueError, match="num_replicas must be >= 1"):
            workload.bundle(method="pipemare", seed=0, replicas=0)
