"""Documentation link hygiene: every repo-relative path that README.md,
ROADMAP.md, or a file under docs/ points at must exist.

CI runs this as part of tier-1 (plus a dedicated link-check step), so a
renamed test file or a promised-but-missing guide fails fast instead of
rotting in the docs.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = [REPO / "README.md", REPO / "ROADMAP.md"] + sorted(
    (REPO / "docs").glob("*.md")
)

# Repo-relative paths referenced in prose or backticks: src/..., tests/...,
# docs/..., benchmarks/..., examples/... plus markdown link targets.
_PATH_RE = re.compile(
    r"(?:src|tests|docs|benchmarks|examples)/[\w./-]+\.(?:py|md|yml)"
)
_MD_LINK_RE = re.compile(r"\]\(([^)#:\s]+)\)")


def referenced_paths(text: str) -> set[str]:
    paths = set(_PATH_RE.findall(text))
    for target in _MD_LINK_RE.findall(text):
        if "://" not in target:
            paths.add(target)
    return paths


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_referenced_files_exist(doc):
    assert doc.exists(), f"{doc} listed but missing"
    missing = sorted(
        path
        for path in referenced_paths(doc.read_text())
        if not (REPO / path).exists()
    )
    assert not missing, f"{doc.name} references missing files: {missing}"


def test_architecture_guide_exists_and_is_linked():
    """The runtime-stack guide must exist and be reachable from both README
    and ROADMAP."""
    guide = REPO / "docs" / "ARCHITECTURE.md"
    assert guide.exists()
    assert "docs/ARCHITECTURE.md" in (REPO / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in (REPO / "ROADMAP.md").read_text()
