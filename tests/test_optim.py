"""Optimizer and scheduler tests."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import (
    SGD,
    Adam,
    AdamW,
    ConstantLR,
    ParamGroup,
    StepDecayLR,
    WarmupInverseSqrtLR,
    WarmupLinearLR,
    clip_grad_norm,
)


def make_param(values):
    p = Parameter(np.asarray(values, dtype=float))
    return p


class TestSGD:
    def test_plain_step(self):
        p = make_param([1.0, 2.0])
        p.grad[:] = [0.5, 0.5]
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 1.95])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad[:] = 1.0
        opt.step()  # v=1, w=-1
        p.grad[:] = 1.0
        opt.step()  # v=1.5, w=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_weight_decay_coupled(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1, weight_decay=0.1)
        p.grad[:] = 0.0
        opt.step()
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.1])

    def test_rebinds_data_never_mutates(self):
        """The weight-version store depends on updates rebinding .data."""
        p = make_param([1.0])
        old_ref = p.data
        p.grad[:] = 1.0
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(old_ref, [1.0])  # old array untouched

    def test_param_groups_lr_scale(self):
        p1, p2 = make_param([0.0]), make_param([0.0])
        opt = SGD(
            [ParamGroup(params=[p1], lr_scale=1.0), ParamGroup(params=[p2], lr_scale=0.1)],
            lr=1.0,
        )
        p1.grad[:] = 1.0
        p2.grad[:] = 1.0
        opt.step()
        np.testing.assert_allclose(p1.data, [-1.0])
        np.testing.assert_allclose(p2.data, [-0.1])

    def test_rejects_bad_hyperparams(self):
        p = make_param([0.0])
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, weight_decay=-1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_state_memory_elements(self):
        p = make_param(np.zeros(10))
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step()
        assert opt.state_memory_elements() == 10  # one velocity buffer

    def test_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            p.grad[:] = p.data  # grad of w^2/2
            opt.step()
        assert abs(p.data[0]) < 1e-6


class TestAdam:
    def test_first_step_is_signed_lr(self):
        p = make_param([0.0])
        opt = Adam([p], lr=0.1)
        p.grad[:] = 3.0
        opt.step()
        np.testing.assert_allclose(p.data, [-0.1], atol=1e-8)

    def test_bias_correction_matters(self):
        """Without correction the first step would be tiny."""
        p = make_param([0.0])
        opt = Adam([p], lr=0.1, betas=(0.9, 0.999))
        p.grad[:] = 1.0
        opt.step()
        assert abs(p.data[0]) > 0.09

    def test_adamw_decoupled_decay(self):
        pw = make_param([1.0])
        pa = make_param([1.0])
        adamw = AdamW([pw], lr=0.1, weight_decay=0.5)
        adam = Adam([pa], lr=0.1, weight_decay=0.5)
        pw.grad[:] = 0.0
        pa.grad[:] = 0.0
        adamw.step()
        adam.step()
        # decoupled: w -= lr*wd*w exactly; coupled: goes through m/v machinery
        np.testing.assert_allclose(pw.data, [1.0 - 0.1 * 0.5 * 1.0])
        assert pw.data[0] != pa.data[0]

    def test_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            p.grad[:] = p.data
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([make_param([0.0])], lr=0.1, betas=(1.0, 0.9))

    def test_state_memory_elements(self):
        p = make_param(np.zeros(10))
        opt = Adam([p], lr=0.1)
        opt.step()
        assert opt.state_memory_elements() == 21  # m + v + t


class TestClipping:
    def test_no_clip_below_threshold(self):
        p = make_param([0.0, 0.0])
        p.grad[:] = [3.0, 4.0]  # norm 5
        norm = clip_grad_norm([p], 10.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(p.grad, [3.0, 4.0])

    def test_clips_above_threshold(self):
        p = make_param([0.0, 0.0])
        p.grad[:] = [3.0, 4.0]
        clip_grad_norm([p], 1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_rejects_bad_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([make_param([0.0])], 0.0)


class TestSchedulers:
    def test_constant(self):
        s = ConstantLR(0.1)
        assert s(0) == s(100) == 0.1

    def test_step_decay(self):
        s = StepDecayLR(1.0, interval_steps=10, factor=0.1)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == pytest.approx(0.1)
        assert s(25) == pytest.approx(0.01)

    def test_warmup_inverse_sqrt(self):
        s = WarmupInverseSqrtLR(1.0, warmup_steps=10, init_lr=0.01)
        assert s(0) == pytest.approx(0.01)
        assert s(10) == pytest.approx(1.0)
        assert s(40) == pytest.approx(0.5)  # sqrt(10/40)

    def test_warmup_linear_flat_after(self):
        s = WarmupLinearLR(1.0, warmup_steps=4)
        assert s(4) == s(100) == 1.0

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            ConstantLR(0.1)(-1)

    @pytest.mark.parametrize("cls,args", [
        (ConstantLR, (-1.0,)),
        (StepDecayLR, (1.0, 0)),
        (WarmupInverseSqrtLR, (1.0, 0)),
        (WarmupLinearLR, (0.0, 5)),
    ])
    def test_invalid_configs(self, cls, args):
        with pytest.raises(ValueError):
            cls(*args)
