"""The overlapped optimizer boundary: two steps in flight per worker pool.

With ``overlap_boundary=True`` (the runtime default) step t+1 is issued to
the workers *before* the driver folds step t's gradients, steps the
optimizer and publishes version t+1 — the minibatch flush the barrier-mode
runtime (and PipeDream-style schedules) pay for is gone.  Equivalence is
preserved by version-gated weight reads: this file pins down

* bit-for-bit equality of overlap-on, overlap-off and the simulator across
  methods, techniques and both worker pools (the main differential suites
  in ``test_runtime_equivalence.py`` / ``test_runtime_process.py`` /
  ``test_runtime_translation.py`` already run overlap-on, since it is the
  default — here the three modes are compared side by side);
* the deferred-boundary state machine itself (the plan lags one step until
  ``sync()``, which publishes and restores the latest weights);
* error paths with a boundary pending: the pending step's update must land
  and the latest weights must be live afterwards, whether the next step's
  worker raised or died;
* the no-copy microbatch routing contract (workers receive views of the
  caller's minibatch);
* the gradient-mailbox step stamps and the measured boundary-stall metric.

Every test carries the ``overlap`` marker: CI runs ``-m overlap`` as a
dedicated lane with a tightened ``--timeout`` so a version-gating bug (a
wave waiting for a version that never publishes) surfaces as a timeout
failure, not a hung job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.pipeline import (
    AsyncPipelineRuntime,
    PipelineDeadlockError,
    PipelineExecutor,
    RuntimeWedgedError,
    partition_model,
)
from repro.pipeline.executor import param_groups_from_stages
from repro.pipeline.plan import split_views

pytestmark = pytest.mark.overlap

TIMEOUT = 15.0  # deadlock timeout for every concurrent runtime in this file


def toy_classification(rng, d=6, c=3, n=96):
    centers = rng.normal(size=(c, d)) * 2
    y = rng.integers(0, c, size=n)
    x = centers[y] + rng.normal(size=(n, d))
    return x, y


def build(cls, method="pipemare", *, num_stages=4, num_microbatches=2, cfg=None,
          seed=7, **kw):
    model = MLP([6, 8, 8, 8, 3], np.random.default_rng(seed))
    stages = partition_model(model, num_stages)
    opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
    backend = cls(
        model, CrossEntropyLoss(), opt, stages, num_microbatches, method,
        pipemare=cfg, **kw,
    )
    return model, backend


TECHNIQUES = {
    "plain": dict(cfg=None, kw={}),
    "t1t2": dict(cfg=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5), kw={}),
    "t3": dict(
        cfg=PipeMareConfig.full(anneal_steps=50, warmup_steps=2, decay=0.5), kw={}
    ),
    "recompute": dict(
        cfg=PipeMareConfig.t2_only(decay=0.5), kw={"recompute_segment": 2}
    ),
}


class TestThreeWayDifferential:
    """simulator vs barrier vs overlapped — all three must agree exactly."""

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    def test_methods_match_bitwise(self, rng, backend, method):
        x, y = toy_classification(rng)
        runs = {}
        for label, kw in (
            ("simulator", None),
            ("barrier", {"overlap_boundary": False}),
            ("overlap", {"overlap_boundary": True}),
        ):
            if kw is None:
                model, be = build(PipelineExecutor, method)
            else:
                model, be = build(
                    AsyncPipelineRuntime, method, backend=backend,
                    deadlock_timeout=TIMEOUT, **kw,
                )
            losses = []
            try:
                for i in range(6):
                    b = slice(i * 16, (i + 1) * 16)
                    losses.append(be.train_step(x[b], y[b]))
                if hasattr(be, "sync"):
                    be.sync()
                runs[label] = (losses, [p.data.copy() for p in model.parameters()])
            finally:
                if hasattr(be, "close"):
                    be.close()
        ref_losses, ref_weights = runs["simulator"]
        for label in ("barrier", "overlap"):
            losses, weights = runs[label]
            assert losses == ref_losses, f"{label} losses diverged"
            for p, q in zip(weights, ref_weights):
                np.testing.assert_array_equal(p, q, err_msg=label)

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    def test_techniques_match_bitwise(self, rng, backend, technique):
        """T1/T2 velocity reads, T3's sync→async transition and recompute's
        three-delay reads all resolve through the version gates."""
        x, y = toy_classification(rng)
        spec = TECHNIQUES[technique]
        m1, ex = build(PipelineExecutor, cfg=spec["cfg"], **spec["kw"])
        m2, rt = build(
            AsyncPipelineRuntime, cfg=spec["cfg"], backend=backend,
            deadlock_timeout=TIMEOUT, overlap_boundary=True, **spec["kw"],
        )
        with rt:
            for i in range(8):
                b = slice((i * 16) % 80, (i * 16) % 80 + 16)
                l1 = ex.train_step(x[b], y[b])
                l2 = rt.train_step(x[b], y[b])
                assert l1 == l2, f"step {i}: {l1!r} != {l2!r}"
            rt.sync()
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)


class TestSlotReuseInvariant:
    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    @pytest.mark.parametrize("num_stages,num_microbatches", [(1, 1), (2, 2), (4, 2), (4, 8), (7, 3)])
    @pytest.mark.parametrize("recompute", [None, 2])
    def test_no_wave_can_reach_the_slot_being_rewritten(
        self, method, num_stages, num_microbatches, recompute
    ):
        """The barrier-free publish rewrites slot ``(t − history) % history``
        while step t is in flight; every wave of step t must resolve
        versions ≥ ``t − (history − 2)`` — the weight_store.py window
        invariant the overlapped boundary relies on, checked over the
        whole (op, stage, microbatch) grid."""
        from repro.pipeline.plan import StepPlan

        if recompute is not None and recompute > num_stages:
            pytest.skip("segment larger than pipeline")
        model = MLP([6] + [4] * num_stages + [3], np.random.default_rng(0))
        stages = partition_model(model, num_stages)
        plan = StepPlan(
            params=model.parameters(),
            optimizer=SGD(param_groups_from_stages(stages), lr=0.1),
            stages=stages,
            num_microbatches=num_microbatches,
            method=method,
            recompute_segment=recompute,
        )
        history = plan.profile.history_needed()
        def reads(op, s, t, j, sync):
            """Every store version the (op, stage, microbatch) wave loads."""
            if sync:
                return [t]
            if op == "F":
                return [plan.profile.fwd_version(s, t, j)]
            if op == "B":
                if method == "pipedream":
                    return [plan.profile.bkwd_version(s, t, j)]
                return [t]
            return [plan._recompute_version(s, t, j)]

        for t in (0, 1, history, history + 3, 50):
            sync = plan.is_sync_step_at(t)
            for op in ("F", "R", "B"):
                if op == "R" and not plan.recompute_active(sync):
                    continue
                for s in range(num_stages):
                    for j in range(num_microbatches):
                        gate = plan.required_version(op, s, t, j, sync)
                        assert gate <= t, (op, s, t, j)
                        for v in reads(op, s, t, j, sync):
                            assert v <= gate, (
                                f"wave ({op}, {s}, {t}, {j}) reads version "
                                f"{v} newer than its gate {gate}"
                            )
                            assert v >= max(0, t - (history - 2)), (
                                f"wave ({op}, stage {s}, t {t}, j {j}) reads "
                                f"version {v}, inside the slot being "
                                f"rewritten (history {history})"
                            )


class TestStorePublishOrder:
    def test_store_advertises_version_only_after_all_stages_land(self, rng):
        """``push_arrays`` must be a release operation: ``latest_version``
        may not advance until *every* stage buffer holds the new payload.
        A lockless gate fast-path reading mid-push would otherwise resolve
        a not-yet-written stage and KeyError (regression: the store used
        to derive latest_version from stage 0's buffer, which is appended
        first)."""
        model = MLP([6, 8, 8, 3], np.random.default_rng(0))
        stages = partition_model(model, 3)
        from repro.pipeline.weight_store import WeightVersionStore

        store = WeightVersionStore(stages, history=3)
        observed = []
        for buf in store._buffers:
            real_append = buf.append

            def spy(payload, _real=real_append):
                observed.append(store.latest_version)
                return _real(payload)

            buf.append = spy
        new = [[np.zeros_like(p.data) for p in s.params] for s in stages]
        assert store.push_arrays(new) == 1
        assert observed == [0, 0, 0], (
            f"latest_version advanced mid-push: {observed}"
        )
        assert store.latest_version == 1


class TestDeferredBoundaryStateMachine:
    @pytest.mark.timeout(60)
    def test_boundary_is_genuinely_deferred_until_sync(self, rng):
        """White-box: after an overlapped train_step the optimizer has not
        stepped (plan.t and the store's latest version lag by one);
        ``sync()`` publishes the pending version and restores the live
        weights — the cross-step pipelining this PR exists for."""
        x, y = toy_classification(rng)
        m, rt = build(AsyncPipelineRuntime, deadlock_timeout=TIMEOUT)
        with rt:
            rt.train_step(x[:16], y[:16])
            assert rt.plan.t == 0, "boundary ran inline — nothing overlapped"
            assert rt.store.latest_version == 0
            rt.train_step(x[16:32], y[16:32])
            # step 0's boundary was completed while step 1 filled
            assert rt.plan.t == 1
            assert rt.store.latest_version == 1
            rt.sync()
            assert rt.plan.t == 2
            assert rt.store.latest_version == 2
            for s, stage in enumerate(rt.stages):
                for p, stored in zip(
                    stage.params, rt.store.weights(s, rt.store.latest_version)
                ):
                    assert p.data is stored

    @pytest.mark.timeout(60)
    def test_sync_is_idempotent_and_step_time_tracks_issue_index(self, rng):
        """step_time() must describe the *next* step to issue (T3's warmup
        window is indexed by minibatch), and repeated sync() is a no-op."""
        x, y = toy_classification(rng)
        cfg = PipeMareConfig.full(anneal_steps=50, warmup_steps=2, decay=0.5)
        m1, ex = build(PipelineExecutor, cfg=cfg)
        m2, rt = build(AsyncPipelineRuntime, cfg=cfg, deadlock_timeout=TIMEOUT)
        with rt:
            for i in range(4):
                b = slice(i * 16, (i + 1) * 16)
                assert ex.step_time() == rt.step_time(), f"step {i}"
                l1 = ex.train_step(x[b], y[b])
                l2 = rt.train_step(x[b], y[b])
                assert l1 == l2
            rt.sync()
            rt.sync()
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)

    @pytest.mark.timeout(60)
    def test_state_dict_settles_pending_boundary(self, rng):
        """Checkpointing mid-pipeline must capture the post-step state the
        simulator would have written, and restoring must continue the exact
        trajectory."""
        x, y = toy_classification(rng)
        m1, ex = build(PipelineExecutor)
        m2, rt = build(AsyncPipelineRuntime, deadlock_timeout=TIMEOUT)
        with rt:
            for i in range(3):
                b = slice(i * 16, (i + 1) * 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])
            state = rt.state_dict()  # auto-sync: boundary of step 2 lands here
            assert rt.t == ex.t
            m3, rt2 = build(AsyncPipelineRuntime, seed=11, deadlock_timeout=TIMEOUT)
            with rt2:
                m3.load_state_dict(m2.state_dict())
                rt2.optimizer.load_state_dict(rt.optimizer.state_dict())
                rt2.load_state_dict(state)
                for i in range(3, 6):
                    b = slice(i * 16, (i + 1) * 16)
                    assert ex.train_step(x[b], y[b]) == rt2.train_step(x[b], y[b])


class TestErrorPathsWithBoundaryPending:
    @pytest.mark.timeout(60)
    def test_worker_exception_lands_pending_update_and_restores(self, rng):
        """Step t+1's worker raises while step t's boundary is pending: the
        pending update must land (step t completed — its gradients are
        intact) and the live weights must be the latest version, matching
        the simulator after step t exactly."""
        x, y = toy_classification(rng)
        m1, ex = build(PipelineExecutor)
        m2, rt = build(AsyncPipelineRuntime, deadlock_timeout=5.0)
        ex.train_step(x[:16], y[:16])
        with rt:
            rt.train_step(x[:16], y[:16])
            assert rt.store.latest_version == 0  # boundary deferred
            with pytest.raises(Exception):
                rt.train_step(x[:16, :4], y[:16])  # wrong feature dim
            assert rt.store.latest_version == 1, "pending step-0 update lost"
            for s, stage in enumerate(rt.stages):
                for p, stored in zip(
                    stage.params, rt.store.weights(s, rt.store.latest_version)
                ):
                    assert p.data is stored
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)
            # and the runtime keeps training, still bit-identical
            assert ex.train_step(x[16:32], y[16:32]) == rt.train_step(x[16:32], y[16:32])
            rt.sync()
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)

    @pytest.mark.timeout(120)
    def test_process_worker_death_with_step_in_flight(self, rng):
        """Step t+1 is in flight (and step t's boundary pending) when a
        worker dies: both steps must drain — t's update published, t+1
        aborted — with the latest weights live and the pool wedged."""
        x, y = toy_classification(rng)
        # Pin a single step in flight: this test is about the PR-4 deferred
        # boundary (collected step, unpublished update), which needs the
        # collect to happen inside train_step itself.
        m, rt = build(
            AsyncPipelineRuntime, backend="process",
            deadlock_timeout=5.0, done_grace=2.0, inflight_steps=1,
        )
        rt.train_step(x[:16], y[:16])
        assert rt.store.latest_version == 0  # boundary deferred
        # Sabotage one worker's command pipe so the *issue* of step 1 fails
        # mid-overlap (the worker is gone between steps).
        rt.pool._procs[1].terminate()
        rt.pool._procs[1].join(timeout=5.0)
        rt.pool._conns[1].close()
        with pytest.raises(PipelineDeadlockError):
            rt.train_step(x[16:32], y[16:32])
        assert rt.pool.wedged
        assert rt.store.latest_version == 1, "pending step-0 update lost"
        for s, stage in enumerate(rt.stages):
            for p, stored in zip(
                stage.params, rt.store.weights(s, rt.store.latest_version)
            ):
                assert p.data is stored
        with pytest.raises(RuntimeWedgedError, match="wedged"):
            rt.train_step(x[:16], y[:16])
        rt.close()


class TestMicrobatchViews:
    def test_split_views_matches_array_split_and_shares_memory(self, rng):
        x = rng.normal(size=(19, 4))
        for n in (1, 2, 3, 4, 8):
            ours = split_views(x, n)
            refs = np.array_split(x, n)
            assert len(ours) == len(refs)
            for a, b in zip(ours, refs):
                np.testing.assert_array_equal(a, b)
                assert np.shares_memory(a, x), "microbatch is a copy, not a view"

    @pytest.mark.timeout(60)
    def test_thread_workers_receive_views_of_the_minibatch(self, rng):
        """The external-input routing must hand thread workers windows into
        the caller's arrays — a per-step copy on this path is a perf
        regression (the process backend necessarily copies into the
        command pipe instead)."""
        x, y = toy_classification(rng)
        m, rt = build(AsyncPipelineRuntime, deadlock_timeout=TIMEOUT)
        captured = []
        real_issue = rt.pool.issue

        def spy_issue(t, sync, ext, ys, scales, n):
            captured.append((ext, ys))
            return real_issue(t, sync, ext, ys, scales, n)

        rt.pool.issue = spy_issue
        with rt:
            rt.train_step(x[:16], y[:16])
            ext, ys = captured[0]
            for stream in ext:
                for xj in stream:
                    assert np.shares_memory(xj, x), "worker input was copied"
            for yj in ys:
                assert np.shares_memory(yj, y), "worker target was copied"


class TestMailboxAndMetrics:
    @pytest.mark.timeout(120)
    def test_mailbox_step_stamps(self, rng):
        """Every stage block must carry the collected step's stamp, and a
        stale stamp must fail loudly instead of folding silently."""
        x, y = toy_classification(rng)
        m, rt = build(AsyncPipelineRuntime, backend="process", deadlock_timeout=TIMEOUT)
        with rt:
            rt.train_step(x[:16], y[:16])
            rt.sync()  # in-flight steps only stamp once collected
            rt.pool.mailbox.check_stamps(1)  # first issued step
            rt.train_step(x[16:32], y[16:32])
            rt.sync()
            rt.pool.mailbox.check_stamps(2)
            with pytest.raises(RuntimeError, match="mailbox"):
                rt.pool.mailbox.check_stamps(7)

    @pytest.mark.timeout(60)
    def test_boundary_stall_metric_separates_the_modes(self, rng):
        """Barrier mode pays a measurable non-overlapped boundary every
        step; overlap mode must report zero non-overlapped boundary time
        (its boundary runs inside the next step's fill; any residual cost
        shows up as per-worker gate stalls instead)."""
        x, y = toy_classification(rng)
        m1, barrier = build(
            AsyncPipelineRuntime, deadlock_timeout=TIMEOUT, overlap_boundary=False
        )
        with barrier:
            for i in range(4):
                b = slice(i * 16, (i + 1) * 16)
                barrier.train_step(x[b], y[b])
            assert barrier.stats.total_boundary > 0.0
            assert barrier.stats.boundary_stall_fraction() > 0.0
            assert all(s == 0.0 for s in barrier.stats.total_stall)
        m2, overlap = build(
            AsyncPipelineRuntime, deadlock_timeout=TIMEOUT, overlap_boundary=True
        )
        with overlap:
            for i in range(4):
                b = slice(i * 16, (i + 1) * 16)
                overlap.train_step(x[b], y[b])
            overlap.sync()  # settle the in-flight tail so all 4 steps commit
            assert overlap.stats.total_boundary == 0.0
            assert overlap.stats.steps == 4
