"""Executor semantics tests — the core correctness evidence for the
pipeline simulator:

* GPipe mode is bit-identical to sequential training;
* PipeMare's empirical divergence boundary on a quadratic matches Lemma 1;
* T2 executor dynamics match the hand-rolled recurrence on a deep linear
  net (where fwd/bkwd discrepancy genuinely enters);
* version arithmetic, warmup switching, recompute paths.
"""

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.models import MLP, LinearRegressionModel
from repro.nn import CrossEntropyLoss, Linear, Module, MSELoss
from repro.optim import SGD
from repro.pipeline import Method, PipelineExecutor, partition_model
from repro.pipeline.executor import param_groups_from_stages
from repro.theory import lemma1_alpha_max
from repro.train import SequentialTrainer


def toy_classification(rng, d=6, c=3, n=96):
    centers = rng.normal(size=(c, d)) * 2
    y = rng.integers(0, c, size=n)
    x = centers[y] + rng.normal(size=(n, d))
    return x, y


def make_executor(model, method, num_microbatches=2, lr=0.05, momentum=0.0,
                  pipemare=None, num_stages=None, **kw):
    loss = CrossEntropyLoss()
    stages = partition_model(model, num_stages)
    opt = SGD(param_groups_from_stages(stages), lr=lr, momentum=momentum)
    ex = PipelineExecutor(
        model, loss, opt, stages, num_microbatches, method, pipemare=pipemare, **kw
    )
    return ex, loss


class TestGPipeEquivalence:
    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    def test_gpipe_equals_sequential_bitwise(self, rng, momentum):
        x, y = toy_classification(rng)
        m1 = MLP([6, 8, 3], np.random.default_rng(7))
        m2 = MLP([6, 8, 3], np.random.default_rng(7))
        ex, _ = make_executor(m1, "gpipe", num_microbatches=4, momentum=momentum)
        seq = SequentialTrainer(
            m2, CrossEntropyLoss(), SGD(m2.parameters(), lr=0.05, momentum=momentum),
            num_microbatches=4,
        )
        for i in range(8):
            b = slice(i * 12, (i + 1) * 12)
            l1 = ex.train_step(x[b], y[b])
            l2 = seq.train_step(x[b], y[b])
            assert l1 == pytest.approx(l2, abs=1e-14)
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_pipemare_with_zero_delay_equals_gpipe(self, rng):
        """A 1-stage, 1-microbatch PipeMare pipe still has τ_fwd=1 (itself);
        but with GPipe method the executor must be delay-free."""
        x, y = toy_classification(rng)
        m1 = MLP([6, 8, 3], np.random.default_rng(3))
        ex, _ = make_executor(m1, "gpipe", num_microbatches=1)
        ex.train_step(x[:12], y[:12])  # smoke: no store/version errors


class TestStabilityBoundary:
    def test_boundary_matches_lemma1_tau1(self, rng):
        """P=1, N=1 ⇒ τ_fwd = 1 exactly; the executor's empirical divergence
        boundary must sit at (2/λ)sin(π/6)."""
        n, d = 48, 3
        x = rng.normal(size=(n, d))
        y_reg = x @ rng.normal(size=d)
        lam = float(np.linalg.eigvalsh(2 * x.T @ x / n)[-1])

        def diverges(alpha):
            m = LinearRegressionModel(d, np.random.default_rng(1))
            loss = MSELoss()
            stages = partition_model(m)
            opt = SGD(param_groups_from_stages(stages), lr=alpha)
            ex = PipelineExecutor(m, loss, opt, stages, 1, "pipemare")
            val = np.inf
            for _ in range(300):
                val = ex.train_step(x, y_reg)
                if not np.isfinite(val) or val > 1e8:
                    return True
            return val > 1.0

        lo, hi = 1e-3, 4.0
        for _ in range(30):
            mid = 0.5 * (lo + hi)
            if diverges(mid):
                hi = mid
            else:
                lo = mid
        assert lo == pytest.approx(lemma1_alpha_max(1, lam), rel=0.02)


class TestVersioningSemantics:
    def test_forward_uses_stale_backward_uses_fresh(self, rng):
        """Direct check of the PipeMare contract on a linear model:
        the gradient after t steps equals λ(u_fwd − w*) with u_fwd = w_{t−1}
        for P=1, N=1 (τ=1)."""
        n, d = 32, 1
        x = rng.normal(size=(n, d))
        w_star = 1.3
        y = x[:, 0] * w_star
        m = LinearRegressionModel(d, np.random.default_rng(5))
        loss = MSELoss()
        stages = partition_model(m)
        opt = SGD(param_groups_from_stages(stages), lr=0.1)
        ex = PipelineExecutor(m, loss, opt, stages, 1, "pipemare")
        lam = 2 * float(np.mean(x**2))
        w_hist = [float(m.linear.weight.data[0, 0])]
        for t in range(6):
            ex.train_step(x, y)
            w_hist.append(float(m.linear.weight.data[0, 0]))
        # replay: w_{t+1} = w_t − α λ (w_{t−1} − w*)
        for t in range(1, 6):
            expected = w_hist[t] - 0.1 * lam * (w_hist[t - 1] - w_star)
            assert w_hist[t + 1] == pytest.approx(expected, abs=1e-12)

    def test_pipedream_differs_from_pipemare(self, rng):
        """Weight stashing (τ_bkwd = τ_fwd) must produce different dynamics
        from PipeMare (τ_bkwd = 0) on a multi-stage model."""
        x, y = toy_classification(rng)
        outs = {}
        for method in ("pipedream", "pipemare"):
            m = MLP([6, 8, 8, 3], np.random.default_rng(7))
            ex, _ = make_executor(m, method, num_microbatches=2, lr=0.05)
            for i in range(6):
                b = slice(i * 16, (i + 1) * 16)
                ex.train_step(x[b], y[b])
            outs[method] = np.concatenate([p.data.ravel() for p in m.parameters()])
        assert np.abs(outs["pipedream"] - outs["pipemare"]).max() > 1e-8

    def test_latest_weights_restored_after_step(self, rng):
        x, y = toy_classification(rng)
        m = MLP([6, 8, 3], np.random.default_rng(7))
        ex, _ = make_executor(m, "pipemare", num_microbatches=2)
        ex.train_step(x[:16], y[:16])
        for s, stage in enumerate(ex.stages):
            for p, stored in zip(stage.params, ex.store.weights(s, ex.store.latest_version)):
                assert p.data is stored

    def test_minibatch_smaller_than_microbatches_rejected(self, rng):
        m = MLP([6, 8, 3], np.random.default_rng(7))
        ex, _ = make_executor(m, "pipemare", num_microbatches=8)
        with pytest.raises(ValueError):
            ex.train_step(np.zeros((4, 6)), np.zeros(4, dtype=int))

    def test_optimizer_group_mismatch_rejected(self, rng):
        m = MLP([6, 8, 3], np.random.default_rng(7))
        stages = partition_model(m)
        opt = SGD(m.parameters(), lr=0.1)  # single group
        with pytest.raises(ValueError):
            PipelineExecutor(m, CrossEntropyLoss(), opt, stages, 2, "pipemare")

    def test_ragged_microbatches_weighted_exactly(self, rng):
        """Gradient with unequal microbatch sizes must equal the full-batch
        gradient in synchronous mode."""
        x, y = toy_classification(rng, n=10)  # 10 samples into 4 microbatches
        m1 = MLP([6, 8, 3], np.random.default_rng(7))
        m2 = MLP([6, 8, 3], np.random.default_rng(7))
        ex, _ = make_executor(m1, "gpipe", num_microbatches=4, lr=0.05)
        seq = SequentialTrainer(
            m2, CrossEntropyLoss(), SGD(m2.parameters(), lr=0.05), num_microbatches=1
        )
        ex.train_step(x, y)
        seq.train_step(x, y)
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_allclose(p1.data, p2.data, atol=1e-12)


class TestT2Semantics:
    def test_t2_matches_handrolled_deep_linear(self, rng):
        """Executor with T2 on y = w2·w1·x must follow the exact recurrence
        with corrected backward weights (machine-precision check)."""
        n = 16
        x = rng.normal(size=(n, 1))
        y = 0.8 * x[:, 0]
        alpha, decay = 0.05, 0.3

        class DeepLinear(Module):
            def __init__(self, r):
                super().__init__()
                self.l1 = Linear(1, 1, r, bias=False)
                self.l2 = Linear(1, 1, r, bias=False)

            def forward(self, xx):
                return self.l2(self.l1(xx))[:, 0]

            def backward(self, g):
                return self.l1.backward(self.l2.backward(g[:, None]))

        m = DeepLinear(np.random.default_rng(3))
        w1_0 = float(m.l1.weight.data[0, 0])
        w2_0 = float(m.l2.weight.data[0, 0])
        loss = MSELoss()
        stages = partition_model(m)
        opt = SGD(param_groups_from_stages(stages), lr=alpha)
        ex = PipelineExecutor(
            m, loss, opt, stages, 1, "pipemare",
            pipemare=PipeMareConfig.t2_only(decay=decay),
        )
        traj = [(w1_0, w2_0)]
        for _ in range(20):
            ex.train_step(x, y)
            traj.append((float(m.l1.weight.data[0, 0]), float(m.l2.weight.data[0, 0])))

        mx = float(np.mean(x**2))
        mxy = float(np.mean(x[:, 0] * y))
        hist1, hist2 = [w1_0] * 8, [w2_0] * 8
        d2 = 0.0
        g1c, g2c = decay ** (1 / 3.0), decay ** (1 / 1.0)
        d1 = 0.0
        for t in range(20):
            u1 = hist1[3] if t >= 3 else w1_0
            u2 = hist2[1] if t >= 1 else w2_0
            b2 = hist2[0] - 1.0 * d2  # T2-corrected current w2 (Δτ = 1)
            r = u2 * u1 * mx - mxy
            w1n = hist1[0] - alpha * 2 * b2 * r
            w2n = hist2[0] - alpha * 2 * u1 * r
            d1 = g1c * d1 + (1 - g1c) * (w1n - hist1[0])
            d2 = g2c * d2 + (1 - g2c) * (w2n - hist2[0])
            hist1 = [w1n] + hist1[:-1]
            hist2 = [w2n] + hist2[:-1]
            assert traj[t + 1][0] == pytest.approx(w1n, abs=1e-13)
            assert traj[t + 1][1] == pytest.approx(w2n, abs=1e-13)

    def test_t2_adds_one_weight_copy_of_memory(self, rng):
        m = MLP([6, 8, 3], np.random.default_rng(7))
        ex, _ = make_executor(
            m, "pipemare", pipemare=PipeMareConfig.t2_only(), num_microbatches=2
        )
        assert ex.extra_memory_elements() == m.num_parameters()

    def test_t2_ignored_for_sync_methods(self, rng):
        m = MLP([6, 8, 3], np.random.default_rng(7))
        ex, _ = make_executor(
            m, "gpipe", pipemare=PipeMareConfig.t2_only(), num_microbatches=2
        )
        assert ex.corrector is None


class TestWarmup:
    def test_t3_switches_sync_to_async(self, rng):
        x, y = toy_classification(rng)
        m1 = MLP([6, 8, 3], np.random.default_rng(7))
        m2 = MLP([6, 8, 3], np.random.default_rng(7))
        cfg = PipeMareConfig(use_t1=False, use_t2=False, use_t3=True, warmup_steps=3)
        ex1, _ = make_executor(m1, "pipemare", pipemare=cfg, num_microbatches=2)
        ex2, _ = make_executor(m2, "gpipe", num_microbatches=2)
        # During warmup, PipeMare must match GPipe exactly.
        for i in range(3):
            b = slice(i * 16, (i + 1) * 16)
            ex1.train_step(x[b], y[b])
            ex2.train_step(x[b], y[b])
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)
        # After warmup they must diverge (async kicks in).
        for i in range(3, 6):
            b = slice(i * 16, (i + 1) * 16)
            ex1.train_step(x[b], y[b])
            ex2.train_step(x[b], y[b])
        diffs = max(
            np.abs(p1.data - p2.data).max()
            for p1, p2 in zip(m1.parameters(), m2.parameters())
        )
        assert diffs > 0

    def test_step_time_reflects_warmup(self, rng):
        m = MLP([6, 8, 3], np.random.default_rng(7))
        cfg = PipeMareConfig(use_t1=False, use_t2=False, use_t3=True, warmup_steps=2)
        ex, _ = make_executor(m, "pipemare", pipemare=cfg, num_microbatches=2)
        assert ex.step_time() > 3.0  # sync step ≈ 1/0.3
        x, y = toy_classification(rng)
        ex.train_step(x[:16], y[:16])
        ex.train_step(x[:16], y[:16])
        assert ex.step_time() == 1.0  # async now


class TestT1Integration:
    def test_t1_scales_applied_per_stage(self, rng):
        x, y = toy_classification(rng)
        m = MLP([6, 8, 8, 3], np.random.default_rng(7))
        cfg = PipeMareConfig.t1_only(anneal_steps=100)
        ex, _ = make_executor(m, "pipemare", pipemare=cfg, num_microbatches=2)
        ex.train_step(x[:16], y[:16])
        scales = [g.lr_scale for g in ex.optimizer.groups]
        taus = ex.profile.tau_fwd_all()
        for s, scale in enumerate(scales):
            assert scale == pytest.approx(max(taus[s], 1.0) ** -1.0)
        assert scales[0] < scales[-1]  # earliest stage most damped

    def test_t1_inactive_during_warmup(self, rng):
        x, y = toy_classification(rng)
        m = MLP([6, 8, 3], np.random.default_rng(7))
        cfg = PipeMareConfig.full(anneal_steps=100, warmup_steps=2)
        ex, _ = make_executor(m, "pipemare", pipemare=cfg, num_microbatches=2)
        ex.train_step(x[:16], y[:16])
        assert all(g.lr_scale == 1.0 for g in ex.optimizer.groups)


class TestRecomputeExecution:
    def test_recompute_sync_matches_plain(self, rng):
        """In synchronous (GPipe) mode recompute must be a no-op."""
        x, y = toy_classification(rng)
        m1 = MLP([6, 8, 3], np.random.default_rng(7))
        m2 = MLP([6, 8, 3], np.random.default_rng(7))
        ex1, _ = make_executor(m1, "gpipe", num_microbatches=2, recompute_segment=1)
        ex2, _ = make_executor(m2, "gpipe", num_microbatches=2)
        for i in range(4):
            b = slice(i * 16, (i + 1) * 16)
            ex1.train_step(x[b], y[b])
            ex2.train_step(x[b], y[b])
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_recompute_async_trains(self, rng):
        x, y = toy_classification(rng)
        m = MLP([6, 8, 8, 3], np.random.default_rng(7))
        cfg = PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5)
        ex, loss = make_executor(
            m, "pipemare", pipemare=cfg, num_microbatches=2, lr=0.03,
            recompute_segment=2,
        )
        losses = []
        for i in range(40):
            b = slice((i % 6) * 16, ((i % 6) + 1) * 16)
            losses.append(ex.train_step(x[b], y[b]))
        assert np.mean(losses[-5:]) < losses[0]

    def test_recompute_changes_dynamics_vs_no_recompute(self, rng):
        """Recomputed activations come from different weight versions, so
        the async trajectories must differ."""
        x, y = toy_classification(rng)
        params = {}
        for seg in (None, 2):
            m = MLP([6, 8, 8, 3], np.random.default_rng(7))
            ex, _ = make_executor(
                m, "pipemare", num_microbatches=2, lr=0.03, recompute_segment=seg
            )
            for i in range(6):
                b = slice(i * 16, (i + 1) * 16)
                ex.train_step(x[b], y[b])
            params[seg] = np.concatenate([p.data.ravel() for p in m.parameters()])
        assert np.abs(params[None] - params[2]).max() > 1e-12
