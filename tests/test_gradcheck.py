"""Finite-difference verification of every layer's hand-written backward.

The explicit-backward design is the library's foundation (it is what lets
the executor feed different weight versions to the two passes), so every
module's gradient is independently checked against central differences via
:mod:`repro.nn.gradcheck`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import MLP
from repro.nn.gradcheck import (
    GradcheckReport,
    assert_gradients_match,
    gradcheck_loss,
    gradcheck_module,
)
from repro.utils import new_rng


def check(module, x, **kw):
    assert_gradients_match(gradcheck_module(module, x, **kw))


RNG = new_rng(7)


class TestDenseLayers:
    def test_linear(self):
        check(nn.Linear(5, 3, new_rng(0)), RNG.normal(size=(4, 5)))

    def test_linear_no_bias(self):
        check(nn.Linear(5, 3, new_rng(0), bias=False), RNG.normal(size=(4, 5)))

    def test_linear_batched_3d_input(self):
        check(nn.Linear(5, 3, new_rng(0)), RNG.normal(size=(2, 4, 5)))

    def test_bias(self):
        check(nn.Bias(6), RNG.normal(size=(3, 6)))

    def test_flatten(self):
        check(nn.Flatten(), RNG.normal(size=(2, 3, 4, 4)))


class TestActivations:
    def test_relu_away_from_kink(self):
        x = RNG.normal(size=(4, 6))
        x[np.abs(x) < 1e-3] = 0.5  # keep clear of the kink
        check(nn.ReLU(), x)

    def test_gelu(self):
        check(nn.GELU(), RNG.normal(size=(4, 6)))

    def test_tanh(self):
        check(nn.Tanh(), RNG.normal(size=(4, 6)))

    def test_sigmoid(self):
        check(nn.Sigmoid(), RNG.normal(size=(4, 6)))

    def test_identity(self):
        check(nn.Identity(), RNG.normal(size=(4, 6)))

    def test_dropout_eval_mode_is_identity(self):
        drop = nn.Dropout(0.5, new_rng(0))
        drop.eval()
        check(drop, RNG.normal(size=(4, 6)))


class TestConvAndPooling:
    def test_conv2d(self):
        check(
            nn.Conv2d(2, 3, 3, new_rng(0), padding=1),
            RNG.normal(size=(2, 2, 5, 5)),
        )

    def test_conv2d_strided_no_padding(self):
        check(
            nn.Conv2d(1, 2, 3, new_rng(0), stride=2),
            RNG.normal(size=(2, 1, 7, 7)),
        )

    def test_conv2d_no_bias(self):
        check(
            nn.Conv2d(2, 2, 1, new_rng(0), bias=False),
            RNG.normal(size=(2, 2, 4, 4)),
        )

    def test_avg_pool(self):
        check(nn.AvgPool2d(2), RNG.normal(size=(2, 2, 6, 6)))

    def test_max_pool_unique_maxima(self):
        # random continuous inputs: ties have probability zero
        check(nn.MaxPool2d(2), RNG.normal(size=(2, 2, 6, 6)))

    def test_global_avg_pool(self):
        check(nn.GlobalAvgPool2d(), RNG.normal(size=(2, 3, 5, 5)))


class TestNormalization:
    def test_batchnorm_train_mode(self):
        check(nn.BatchNorm2d(3), RNG.normal(size=(4, 3, 5, 5)), rtol=5e-4)

    def test_batchnorm_eval_backward_raises_by_design(self):
        # Training (and therefore backward) is defined on batch statistics;
        # an eval-mode forward clears the cache so backward fails loudly.
        bn = nn.BatchNorm2d(3)
        bn(RNG.normal(size=(8, 3, 5, 5)))  # populate running stats
        bn.eval()
        bn(RNG.normal(size=(4, 3, 5, 5)))
        with pytest.raises(RuntimeError, match="training-mode forward"):
            bn.backward(np.ones((4, 3, 5, 5)))

    def test_groupnorm(self):
        check(nn.GroupNorm(2, 4), RNG.normal(size=(3, 4, 5, 5)), rtol=5e-4)

    def test_layernorm(self):
        check(nn.LayerNorm(6), RNG.normal(size=(4, 6)), rtol=5e-4)

    def test_layernorm_3d(self):
        check(nn.LayerNorm(6), RNG.normal(size=(2, 3, 6)), rtol=5e-4)


class TestEmbeddingAndAttention:
    def test_embedding_parameter_grads(self):
        emb = nn.Embedding(11, 4, new_rng(0))
        idx = RNG.integers(0, 11, size=(3, 5))
        report = gradcheck_module(emb, idx, check_input=False)
        assert_gradients_match(report)

    def test_embedding_scaled(self):
        emb = nn.Embedding(7, 4, new_rng(0), scale=True)
        idx = RNG.integers(0, 7, size=(2, 3))
        assert_gradients_match(gradcheck_module(emb, idx, check_input=False))

    def test_positional_encoding(self):
        check(nn.PositionalEncoding(6, max_len=16), RNG.normal(size=(2, 5, 6)))

    def test_self_attention(self):
        class SelfAttention(nn.Module):
            def __init__(self):
                super().__init__()
                self.mha = nn.MultiHeadAttention(8, 2, new_rng(0))

            def forward(self, x):
                return self.mha(x, x, x)

            def backward(self, grad_out):
                dq, dk, dv = self.mha.backward(grad_out)
                return dq + dk + dv

        check(SelfAttention(), RNG.normal(size=(2, 4, 8)), rtol=5e-4)

    def test_masked_self_attention(self):
        mask = nn.causal_mask(4)

        class MaskedSelfAttention(nn.Module):
            def __init__(self):
                super().__init__()
                self.mha = nn.MultiHeadAttention(8, 2, new_rng(0))

            def forward(self, x):
                return self.mha(x, x, x, mask=mask)

            def backward(self, grad_out):
                dq, dk, dv = self.mha.backward(grad_out)
                return dq + dk + dv

        check(MaskedSelfAttention(), RNG.normal(size=(2, 4, 8)), rtol=5e-4)


class TestComposites:
    def test_sequential_stack(self):
        model = nn.Sequential(
            nn.Linear(5, 8, new_rng(0)),
            nn.Tanh(),
            nn.Linear(8, 3, new_rng(1)),
        )
        check(model, RNG.normal(size=(4, 5)))

    def test_residual_block(self):
        body = nn.Sequential(nn.Linear(6, 6, new_rng(0)), nn.Tanh())
        check(nn.Residual(body), RNG.normal(size=(3, 6)))

    def test_mlp_model(self):
        model = MLP([5, 7, 7, 3], new_rng(2))
        check(model, RNG.normal(size=(4, 5)), max_coords=80)


class TestLosses:
    def test_cross_entropy(self):
        pred = RNG.normal(size=(6, 4))
        target = RNG.integers(0, 4, size=6)
        assert_gradients_match(gradcheck_loss(nn.CrossEntropyLoss(), pred, target))

    def test_sequence_cross_entropy_with_padding(self):
        pred = RNG.normal(size=(2, 5, 4))
        target = RNG.integers(1, 4, size=(2, 5))
        target[0, -2:] = 0  # padding positions get masked out
        loss = nn.SequenceCrossEntropyLoss(pad_id=0)
        assert_gradients_match(gradcheck_loss(loss, pred, target))

    def test_mse(self):
        pred = RNG.normal(size=(5, 3))
        target = RNG.normal(size=(5, 3))
        assert_gradients_match(gradcheck_loss(nn.MSELoss(), pred, target))


class TestCheckerItself:
    def test_detects_wrong_backward(self):
        class Broken(nn.Module):
            def forward(self, x):
                self._x = x
                return x**2

            def backward(self, grad_out):
                return grad_out  # wrong: should be 2x * grad_out

        report = gradcheck_module(Broken(), RNG.normal(size=(3, 3)))
        assert not report.ok
        with pytest.raises(AssertionError, match="gradient check failed"):
            assert_gradients_match(report)

    def test_sampling_respects_max_coords(self):
        report = gradcheck_module(
            nn.Identity(), RNG.normal(size=(10, 10)), max_coords=17
        )
        assert report.checked_coords == 17

    def test_report_merge_accumulates_worst_error(self):
        r = GradcheckReport()
        r.merge("a", np.array([1.0]), np.array([1.0]), rtol=1e-4, atol=1e-7)
        assert r.ok
        r.merge("b", np.array([1.0]), np.array([2.0]), rtol=1e-4, atol=1e-7)
        assert not r.ok
        assert r.max_abs_err == 1.0


class TestModelGradients:
    """End-to-end gradient checks on the two paper models (spot-checked
    coordinates — the full check would cost two forwards per weight)."""

    def test_resnet_tiny_gradients(self):
        from repro.models import resnet_tiny

        model = resnet_tiny(new_rng(0), num_classes=4)
        x = RNG.normal(size=(2, 3, 8, 8))
        assert_gradients_match(
            gradcheck_module(model, x, max_coords=25, rtol=1e-3, atol=1e-6)
        )

    def test_transformer_parameter_gradients(self):
        """Central-difference check of a few Transformer parameters through
        the full encoder-decoder + sequence loss."""
        from repro.models import transformer_tiny

        # dropout=0 → train-mode forward is deterministic (train mode is
        # required: Embedding only caches indices for backward when training)
        model = transformer_tiny(new_rng(0), dropout=0.0)
        vocab = 32
        rng = new_rng(3)
        src = rng.integers(1, vocab, size=(2, 5))
        tgt_in = rng.integers(1, vocab, size=(2, 5))
        target = rng.integers(1, vocab, size=(2, 5))
        loss_fn = nn.SequenceCrossEntropyLoss(pad_id=0)

        def loss_value() -> float:
            return float(loss_fn(model(src, tgt_in), target))

        model.zero_grad()
        loss_fn(model(src, tgt_in), target)
        model.backward(loss_fn.backward())

        eps = 1e-5
        checked = 0
        params = model.named_parameters()
        for name, p in (params[0], params[len(params) // 2], params[-1]):
            flat = p.data.reshape(-1)
            gflat = p.grad.reshape(-1)
            for k in np.linspace(0, flat.size - 1, 4).astype(int):
                orig = flat[k]
                flat[k] = orig + eps
                hi = loss_value()
                flat[k] = orig - eps
                lo = loss_value()
                flat[k] = orig
                numeric = (hi - lo) / (2 * eps)
                assert abs(gflat[k] - numeric) < 1e-4 + 1e-3 * abs(numeric), (
                    f"{name}[{k}]: analytic={gflat[k]:.3e} numeric={numeric:.3e}"
                )
                checked += 1
        assert checked == 12
