"""Counter-based dropout: masks are pure functions of
(seed, layer, optimizer step, microbatch) — the property that makes
training-mode dropout safe on the concurrent pipeline runtimes
(:mod:`repro.nn.dropout`).

Covered here: mask determinism and coordinate sensitivity, recompute
exactness (same slot → same mask on a second forward), invariance to the
number of pipeline workers, and bitwise equality of dropout-regularised
training across all three runtimes (the cross-runtime grid also runs in
``tests/test_runtime_translation.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, Dropout, Linear, ReLU, Sequential
from repro.nn.dropout import counter_mask
from repro.optim import SGD
from repro.pipeline import AsyncPipelineRuntime, PipelineExecutor, partition_model
from repro.pipeline.executor import param_groups_from_stages


class TestCounterMask:
    def test_same_coordinates_same_mask(self):
        a = counter_mask(7, 3, step=11, microbatch=2, shape=(4, 5), keep=0.8)
        b = counter_mask(7, 3, step=11, microbatch=2, shape=(4, 5), keep=0.8)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("delta", [
        dict(seed=8), dict(layer_id=4), dict(step=12), dict(microbatch=3),
    ])
    def test_any_coordinate_changes_mask(self, delta):
        base = dict(seed=7, layer_id=3, step=11, microbatch=2)
        a = counter_mask(**base, shape=(16, 16), keep=0.8)
        base.update(delta)
        b = counter_mask(**base, shape=(16, 16), keep=0.8)
        assert not np.array_equal(a, b)

    def test_keep_rate_is_respected(self):
        mask = counter_mask(0, 0, step=0, microbatch=0, shape=(200, 200), keep=0.7)
        assert abs((mask > 0).mean() - 0.7) < 0.02
        # inverted scaling: survivors are 1/keep
        assert np.allclose(mask[mask > 0], 1.0 / 0.7)


class TestCounterDropoutModule:
    def test_forward_is_reproducible_at_fixed_slot(self):
        """The recompute-pass property: a second forward at the same
        (step, microbatch) slot regenerates the identical mask, where a
        stream-mode dropout would redraw."""
        d = Dropout(0.5, seed=3, layer_id=1)
        d.set_slot(4, 2)
        x = np.ones((6, 6))
        first = d(x)
        second = d(x)
        np.testing.assert_array_equal(first, second)
        d.set_slot(4, 3)
        assert not np.array_equal(first, d(x))

    def test_stream_mode_needs_rng_counter_mode_does_not(self):
        with pytest.raises(ValueError, match="rng .*or a seed"):
            Dropout(0.5)
        Dropout(0.5, seed=1)  # fine
        Dropout(0.0)  # p == 0 never draws

    def test_backward_uses_cached_mask(self):
        d = Dropout(0.5, seed=3)
        d.set_slot(0, 0)
        x = np.ones((4, 4))
        out = d(x)
        g = d.backward(np.ones_like(x))
        np.testing.assert_array_equal(g, out)  # mask applied to ones twice

    def test_runtime_accepts_counter_rejects_stream(self):
        def build(drop):
            r = np.random.default_rng(0)
            model = Sequential(Linear(6, 8, r), drop, ReLU(), Linear(8, 3, r))
            stages = partition_model(model, 2)
            opt = SGD(param_groups_from_stages(stages), lr=0.05)
            return AsyncPipelineRuntime(model, CrossEntropyLoss(), opt, stages, 2)

        rt = build(Dropout(0.5, seed=9))
        rt.close()
        with pytest.raises(ValueError, match="stream-mode"):
            build(Dropout(0.5, np.random.default_rng(1)))


def build_dropout_backend(cls, *, num_stages, seed=7, **kw):
    r = np.random.default_rng(seed)
    model = Sequential(
        Linear(6, 16, r), Dropout(0.3, seed=11, layer_id=0), ReLU(),
        Linear(16, 16, r), Dropout(0.3, seed=11, layer_id=1), ReLU(),
        Linear(16, 3, r),
    )
    stages = partition_model(model, num_stages)
    opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
    return model, cls(model, CrossEntropyLoss(), opt, stages, 4, "gpipe", **kw)


class TestWorkerCountInvariance:
    @pytest.mark.timeout(120)
    def test_masks_invariant_to_worker_count_and_runtime(self, rng):
        """GPipe (synchronous, delay-free) trajectories depend only on the
        math, not the partition — so with counter-based dropout the same
        losses must appear for every stage count and every backend.  A
        scheduling-dependent draw order would break this immediately."""
        x = rng.normal(size=(32, 6))
        y = rng.integers(0, 3, size=32)
        losses = {}
        finals = {}
        for num_stages in (1, 2, 3):
            for cls, label in (
                (PipelineExecutor, f"sim-{num_stages}"),
                (AsyncPipelineRuntime, f"thread-{num_stages}"),
            ):
                model, backend = build_dropout_backend(cls, num_stages=num_stages)
                try:
                    losses[label] = [backend.train_step(x, y) for _ in range(4)]
                    if hasattr(backend, "sync"):
                        backend.sync()  # settle the overlapped boundary
                    finals[label] = [p.data.copy() for p in model.parameters()]
                finally:
                    if hasattr(backend, "close"):
                        backend.close()
        reference = losses["sim-1"]
        for label, series in losses.items():
            assert series == reference, f"{label} diverged: {series} != {reference}"
        for label, params in finals.items():
            for p, q in zip(params, finals["sim-1"]):
                np.testing.assert_array_equal(p, q, err_msg=label)

    @pytest.mark.timeout(120)
    def test_process_backend_derives_identical_masks(self, rng):
        """Process workers rebuild Dropout modules from the spec and must
        derive the driver's masks with no RNG state shared."""
        x = rng.normal(size=(32, 6))
        y = rng.integers(0, 3, size=32)
        m1, sim = build_dropout_backend(PipelineExecutor, num_stages=3)
        m2, proc = build_dropout_backend(
            AsyncPipelineRuntime, num_stages=3, backend="process",
            deadlock_timeout=15.0,
        )
        with proc:
            for _ in range(3):
                assert sim.train_step(x, y) == proc.train_step(x, y)
            proc.sync()  # settle the overlapped boundary before comparing
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)
