"""Differential tests: the framed-socket runtime must be bit-for-bit
identical to the sequential simulator.

Same contract as ``tests/test_runtime_process.py`` for the shared-memory
backend — same grid, same assertion style — but every payload crosses a
real socket (UDS loopback by default, one TCP case): spec-based worker
construction, the version-gated remote weight mirror, gradients riding
the done reports, persistent-state sync back, and checkpoint resync over
the control channel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.models import MLP
from repro.models.resnet import resnet_tiny
from repro.nn import CrossEntropyLoss
from repro.optim import SGD, AdamW
from repro.pipeline import (
    RUNTIME_BACKENDS,
    AsyncPipelineRuntime,
    PipelineExecutor,
    make_backend,
    partition_model,
)
from repro.pipeline.executor import param_groups_from_stages

pytestmark = pytest.mark.net

TIMEOUT = 15.0  # deadlock timeout for every runtime in this file


def toy_classification(rng, d=6, c=3, n=96):
    centers = rng.normal(size=(c, d)) * 2
    y = rng.integers(0, c, size=n)
    x = centers[y] + rng.normal(size=(n, d))
    return x, y


def build_mlp_backend(cls, method, *, num_stages, num_microbatches, cfg=None,
                      seed=7, lr=0.05, momentum=0.9, dims=(6, 8, 8, 8, 3), **kw):
    model = MLP(list(dims), np.random.default_rng(seed))
    stages = partition_model(model, num_stages)
    opt = SGD(param_groups_from_stages(stages), lr=lr, momentum=momentum)
    backend = cls(
        model, CrossEntropyLoss(), opt, stages, num_microbatches, method,
        pipemare=cfg, **kw,
    )
    return model, backend


def build_socket_backend(method, **kw):
    kw.setdefault("deadlock_timeout", TIMEOUT)
    return build_mlp_backend(AsyncPipelineRuntime, method, backend="socket", **kw)


def assert_equivalent(m1, ex, m2, rt, x, y, steps=6, batch=16):
    for i in range(steps):
        b = slice((i * batch) % (len(x) - batch + 1), (i * batch) % (len(x) - batch + 1) + batch)
        l1 = ex.train_step(x[b], y[b])
        l2 = rt.train_step(x[b], y[b])
        assert l1 == l2, f"step {i}: simulator loss {l1!r} != socket loss {l2!r}"
    if hasattr(rt, "sync"):
        rt.sync()  # settle a pending overlapped boundary before comparing
    for p1, p2 in zip(m1.parameters(), m2.parameters()):
        np.testing.assert_array_equal(p1.data, p2.data)


TECHNIQUES = {
    "plain": dict(cfg=None, kw={}),
    "t1": dict(cfg=PipeMareConfig.t1_only(anneal_steps=50), kw={}),
    "t2": dict(cfg=PipeMareConfig.t2_only(decay=0.5), kw={}),
    "t1t2": dict(cfg=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5), kw={}),
    "t3": dict(
        cfg=PipeMareConfig.full(anneal_steps=50, warmup_steps=2, decay=0.5), kw={}
    ),
    "recompute": dict(
        cfg=PipeMareConfig.t2_only(decay=0.5), kw={"recompute_segment": 2}
    ),
}


class TestDifferentialGrid:
    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    @pytest.mark.parametrize("num_stages,num_microbatches", [(2, 2), (4, 2), (4, 4), (3, 4)])
    def test_methods_match_bitwise(self, rng, method, num_stages, num_microbatches):
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(
            PipelineExecutor, method,
            num_stages=num_stages, num_microbatches=num_microbatches,
        )
        m2, rt = build_socket_backend(
            method, num_stages=num_stages, num_microbatches=num_microbatches,
        )
        with rt:
            assert rt.num_workers == num_stages
            assert rt.pool.kind == "socket"
            assert_equivalent(m1, ex, m2, rt, x, y)

    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    def test_pipemare_techniques_match_bitwise(self, rng, technique):
        x, y = toy_classification(rng)
        spec = TECHNIQUES[technique]
        m1, ex = build_mlp_backend(
            PipelineExecutor, "pipemare", num_stages=4, num_microbatches=2,
            cfg=spec["cfg"], **spec["kw"],
        )
        m2, rt = build_socket_backend(
            "pipemare", num_stages=4, num_microbatches=2,
            cfg=spec["cfg"], **spec["kw"],
        )
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y, steps=8)

    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("overlap", [True, False])
    def test_overlap_on_and_off_match(self, rng, overlap):
        """The overlapped optimizer boundary must not change the trajectory
        over sockets, exactly as over rings and queues."""
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(
            PipelineExecutor, "pipemare", num_stages=4, num_microbatches=2,
        )
        m2, rt = build_socket_backend(
            "pipemare", num_stages=4, num_microbatches=2,
            overlap_boundary=overlap,
        )
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y)

    @pytest.mark.timeout(180)
    def test_ragged_microbatches_match(self, rng):
        """10 samples into 4 microbatches: the per-microbatch grad weighting
        must agree across backends."""
        x, y = toy_classification(rng, n=10)
        m1, ex = build_mlp_backend(PipelineExecutor, "pipemare", num_stages=4, num_microbatches=4)
        m2, rt = build_socket_backend("pipemare", num_stages=4, num_microbatches=4)
        with rt:
            for _ in range(4):
                assert ex.train_step(x, y) == rt.train_step(x, y)
            rt.sync()
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)

    @pytest.mark.timeout(180)
    def test_adamw_backend_matches(self, rng):
        """Optimizer state (moments) must evolve identically too — the
        optimizer consumes gradients that rode the done reports."""
        x, y = toy_classification(rng)
        models, backends = [], []
        for cls, kw in (
            (PipelineExecutor, {}),
            (AsyncPipelineRuntime, {"backend": "socket", "deadlock_timeout": TIMEOUT}),
        ):
            model = MLP([6, 8, 8, 3], np.random.default_rng(3))
            stages = partition_model(model, 3)
            opt = AdamW(param_groups_from_stages(stages), lr=0.01, weight_decay=0.01)
            backends.append(cls(model, CrossEntropyLoss(), opt, stages, 2, "pipemare", **kw))
            models.append(model)
        m1, m2 = models
        ex, rt = backends
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y)

    @pytest.mark.timeout(240)
    def test_resnet_batchnorm_matches_and_syncs_running_stats(self, rng):
        """BatchNorm emits transposed NCHW intermediates (the frame codec
        must preserve memory layout for bit equality) and its running
        statistics mutate inside the workers — they must land back in the
        driver's model."""
        x = rng.normal(size=(16, 3, 8, 8))
        y = rng.integers(0, 10, size=16)
        models, backends = [], []
        for cls, kw in (
            (PipelineExecutor, {}),
            (AsyncPipelineRuntime, {"backend": "socket", "deadlock_timeout": TIMEOUT}),
        ):
            model = resnet_tiny(np.random.default_rng(1), norm="batch")
            stages = partition_model(model, 4)
            opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
            backends.append(cls(model, CrossEntropyLoss(), opt, stages, 4, "pipemare", **kw))
            models.append(model)
        ex, rt = backends
        with rt:
            for _ in range(3):
                assert ex.train_step(x, y) == rt.train_step(x, y)
            rt.sync()
            for p1, p2 in zip(models[0].parameters(), models[1].parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)
            for m_sim, m_sock in zip(models[0].modules(), models[1].modules()):
                for name, value in m_sim.__dict__.items():
                    if (
                        not name.startswith("_")
                        and isinstance(value, np.ndarray)
                        and name not in m_sim._parameters
                    ):
                        np.testing.assert_array_equal(
                            value, m_sock.__dict__[name],
                            err_msg=f"{type(m_sim).__name__}.{name} not synced",
                        )

    @pytest.mark.timeout(180)
    def test_tcp_family_matches(self, rng):
        """Same trajectory over TCP loopback — length-prefixed framing must
        hold across the byte-stream semantics of a real TCP connection
        (Nagle off, partial reads, coalesced segments)."""
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(
            PipelineExecutor, "pipemare", num_stages=3, num_microbatches=2,
        )
        m2, rt = build_socket_backend(
            "pipemare", num_stages=3, num_microbatches=2,
            net_options={"family": "tcp"},
        )
        with rt:
            assert_equivalent(m1, ex, m2, rt, x, y, steps=4)


class TestRuntimeContract:
    @pytest.mark.timeout(180)
    def test_checkpoint_roundtrip_from_simulator(self, rng):
        """A simulator checkpoint restored into the socket runtime resyncs
        every remote mirror (K_RESET + version window + velocities over the
        weight channel, a resync barrier on the control channel) and
        continues the exact same trajectory."""
        x, y = toy_classification(rng)
        m1, ex = build_mlp_backend(PipelineExecutor, "pipemare", num_stages=4, num_microbatches=2)
        for i in range(3):
            ex.train_step(x[i * 16:(i + 1) * 16], y[i * 16:(i + 1) * 16])
        state = ex.state_dict()
        opt_state = ex.optimizer.state_dict()

        m2, rt = build_socket_backend("pipemare", num_stages=4, num_microbatches=2)
        with rt:
            m2.load_state_dict(m1.state_dict())
            rt.optimizer.load_state_dict(opt_state)
            rt.load_state_dict(state)
            assert rt.t == ex.t
            for i in range(3, 6):
                b = slice((i * 16) % 80, (i * 16) % 80 + 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])

    @pytest.mark.timeout(180)
    def test_make_backend_dispatch(self, rng):
        x, y = toy_classification(rng)
        assert "socket" in RUNTIME_BACKENDS
        model = MLP([6, 8, 3], np.random.default_rng(0))
        stages = partition_model(model, 2)
        opt = SGD(param_groups_from_stages(stages), lr=0.05)
        rt = make_backend(
            "socket", model, CrossEntropyLoss(), opt, stages, 2, "pipemare",
            deadlock_timeout=TIMEOUT,
        )
        try:
            assert isinstance(rt, AsyncPipelineRuntime)
            assert rt.backend == "socket"
            rt.train_step(x[:16], y[:16])
        finally:
            rt.close()

    @pytest.mark.timeout(120)
    def test_replicas_not_supported_yet(self, rng):
        with pytest.raises(ValueError, match="num_replicas"):
            build_socket_backend(
                "pipemare", num_stages=2, num_microbatches=2, num_replicas=2,
            )

    @pytest.mark.timeout(120)
    def test_net_options_rejected_off_socket(self, rng):
        with pytest.raises(ValueError, match="net_options"):
            build_mlp_backend(
                AsyncPipelineRuntime, "pipemare", num_stages=2,
                num_microbatches=2, backend="process",
                net_options={"family": "tcp"},
            )

    @pytest.mark.timeout(180)
    def test_closed_runtime_rejects_steps(self, rng):
        x, y = toy_classification(rng)
        m, rt = build_socket_backend("pipemare", num_stages=2, num_microbatches=2)
        rt.close()
        rt.close()  # idempotent
        with pytest.raises(RuntimeError):
            rt.train_step(x[:16], y[:16])
