"""Unit + property tests for repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import functional as F

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 7))
        s = F.softmax(x)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0)

    def test_invariant_to_shift(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0))

    def test_stable_for_large_inputs(self):
        s = F.softmax(np.array([[1000.0, 0.0, -1000.0]]))
        assert np.isfinite(s).all()
        assert s[0, 0] == pytest.approx(1.0)

    def test_axis_argument(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(F.softmax(x, axis=0).sum(axis=0), 1.0)

    @given(arrays(np.float64, (3, 6), elements=finite_floats))
    @settings(max_examples=30, deadline=None)
    def test_property_positive_and_normalized(self, x):
        s = F.softmax(x)
        assert (s > 0).all()
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-10)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(4, 5))
        np.testing.assert_allclose(F.log_softmax(x), np.log(F.softmax(x)))

    def test_softmax_backward_matches_jacobian(self, rng):
        x = rng.normal(size=(1, 4))
        s = F.softmax(x)[0]
        g = rng.normal(size=(1, 4))
        jac = np.diag(s) - np.outer(s, s)
        expected = g[0] @ jac
        np.testing.assert_allclose(F.softmax_backward(s[None], g)[0], expected)


class TestGelu:
    def test_values_at_zero(self):
        assert F.gelu(np.zeros(3)).tolist() == [0, 0, 0]

    def test_asymptotics(self):
        x = np.array([-20.0, 20.0])
        out = F.gelu(x)
        assert out[0] == pytest.approx(0.0, abs=1e-9)
        assert out[1] == pytest.approx(20.0, rel=1e-9)

    def test_grad_matches_numeric(self, rng):
        x = rng.normal(size=16)
        eps = 1e-6
        num = (F.gelu(x + eps) - F.gelu(x - eps)) / (2 * eps)
        np.testing.assert_allclose(F.gelu_grad(x), num, atol=1e-7)

    @given(arrays(np.float64, (8,), elements=finite_floats))
    @settings(max_examples=30, deadline=None)
    def test_property_monotone_bound(self, x):
        # GELU(x) is bounded between min(0, x) and max(0, x)
        out = F.gelu(x)
        assert (out >= np.minimum(0, x) - 1e-9).all()
        assert (out <= np.maximum(0, x) + 1e-9).all()


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)


class TestIm2col:
    def test_output_size_formula(self):
        assert F.conv_output_size(8, 3, 1, 1) == 8
        assert F.conv_output_size(8, 3, 2, 1) == 4
        assert F.conv_output_size(5, 5, 1, 0) == 1

    def test_rejects_too_large_kernel(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)

    def test_im2col_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols, (oh, ow) = F.im2col(x, (3, 3), 1, 1)
        assert cols.shape == (2, 27, 64)
        assert (oh, ow) == (8, 8)

    def test_im2col_identity_kernel(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        cols, _ = F.im2col(x, (1, 1), 1, 0)
        np.testing.assert_allclose(cols[0, 0], x.reshape(-1))

    def test_im2col_values_manual(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols, (oh, ow) = F.im2col(x, (2, 2), 2, 0)
        assert (oh, ow) == (2, 2)
        # patch at (0,0): [0,1,4,5] -> column 0
        np.testing.assert_allclose(cols[0, :, 0], [0, 1, 4, 5])
        np.testing.assert_allclose(cols[0, :, 3], [10, 11, 14, 15])

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols, _ = F.im2col(x, (3, 3), 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        back = F.col2im(y, x.shape, (3, 3), 2, 1)
        rhs = float(np.sum(x * back))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    @given(
        st.integers(1, 3), st.integers(1, 2), st.integers(0, 1),
        st.integers(4, 7),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_adjoint(self, kernel, stride, padding, size):
        if size + 2 * padding < kernel:
            return
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, size, size))
        cols, _ = F.im2col(x, (kernel, kernel), stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * F.col2im(y, x.shape, (kernel, kernel), stride, padding)))
        assert lhs == pytest.approx(rhs, rel=1e-9)
