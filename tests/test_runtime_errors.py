"""Error-path regressions for the concurrent runtime (thread backend).

Covers the bugfixes shipped with the process-backend PR:

* a worker exception mid-step used to re-raise without restoring the
  latest weight version, leaving ``Parameter.data`` aliased to whatever
  historical version the failing slice last loaded — evaluation or
  checkpointing after a caught error silently read delayed weights;
* the deadlock path used to overwrite ``stats.last_busy`` for workers that
  did report while never updating ``last_wall``/``total_wall``/``steps``,
  so measured bubble fractions mixed busy time from aborted steps with
  wall time that excluded them.  Stats now commit atomically, for
  completed steps only;
* ``close()`` after a deadlock must join all workers without hanging.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.pipeline import (
    AsyncPipelineRuntime,
    PipelineDeadlockError,
    PipelineExecutor,
    RuntimeWedgedError,
    partition_model,
)
from repro.pipeline.executor import param_groups_from_stages
from repro.pipeline.waveprogram import WaveBlock, WaveProgram


def toy_data(rng, n=96):
    centers = rng.normal(size=(3, 6)) * 2
    y = rng.integers(0, 3, size=n)
    x = centers[y] + rng.normal(size=(n, 6))
    return x, y


def build(cls, seed=7, **kw):
    model = MLP([6, 8, 8, 8, 3], np.random.default_rng(seed))
    stages = partition_model(model, 4)
    opt = SGD(param_groups_from_stages(stages), lr=0.05, momentum=0.9)
    return model, cls(model, CrossEntropyLoss(), opt, stages, 2, "pipemare", **kw)


def starved_programs(rt):
    """Compiled programs whose dataflow can never be satisfied: worker 0
    waits for a gradient nobody sends, everyone else idles."""
    starved = WaveProgram(
        blocks=(WaveBlock(ops=(("B", 0),), gate_delay=None, loads=(True,)),),
        num_waves=1,
        num_forwards=0,
    )
    idle = WaveProgram(blocks=(), num_waves=0, num_forwards=0)
    return {
        False: [starved] + [idle for _ in range(rt.num_workers - 1)],
        True: rt.pool._programs[True],
    }


def assert_stats_untouched(rt):
    assert rt.stats.steps == 0
    assert rt.stats.total_wall == 0.0
    assert rt.stats.last_wall == 0.0
    assert all(b == 0.0 for b in rt.stats.total_busy)
    assert all(b == 0.0 for b in rt.stats.last_busy)


class TestWorkerExceptionPath:
    @pytest.mark.timeout(60)
    def test_exception_restores_latest_weights(self, rng):
        """Regression: after a caught worker error every parameter must
        point at the latest stored version, not a delayed one."""
        x, y = toy_data(rng)
        m, rt = build(AsyncPipelineRuntime, deadlock_timeout=5.0)
        with rt:
            rt.train_step(x[:16], y[:16])
            with pytest.raises(Exception):
                rt.train_step(x[:16, :4], y[:16])  # wrong feature dim
            for s, stage in enumerate(rt.stages):
                for p, stored in zip(
                    stage.params, rt.store.weights(s, rt.store.latest_version)
                ):
                    assert p.data is stored, (
                        f"stage {s}: Parameter.data aliases a historical "
                        "version after a worker exception"
                    )

    @pytest.mark.timeout(60)
    def test_exception_commits_no_stats_and_runtime_stays_usable(self, rng):
        """An aborted step contributes neither busy nor wall time, and the
        runtime continues bit-identical to the simulator afterwards."""
        x, y = toy_data(rng)
        m1, ex = build(PipelineExecutor)
        m2, rt = build(AsyncPipelineRuntime, deadlock_timeout=5.0)
        with rt:
            with pytest.raises(Exception):
                rt.train_step(x[:16, :4], y[:16])
            assert_stats_untouched(rt)
            for i in range(3):
                b = slice(i * 16, (i + 1) * 16)
                assert ex.train_step(x[b], y[b]) == rt.train_step(x[b], y[b])
            rt.sync()  # drain in-flight steps so every wall clock is committed
            assert rt.stats.steps == 3
            for p1, p2 in zip(m1.parameters(), m2.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)


class TestDeadlockPath:
    @pytest.mark.timeout(60)
    def test_starved_worker_raises_and_commits_no_stats(self, rng):
        """A program whose dataflow can never be satisfied (worker 0 waits
        for a gradient nobody sends) must abort with PipelineDeadlockError
        after the worker's own channel timeout — with stats untouched
        (regression: the old code recorded last_busy for reporting workers
        while skipping wall/steps)."""
        x, y = toy_data(rng)
        m, rt = build(AsyncPipelineRuntime, deadlock_timeout=0.3, done_grace=5.0)
        with rt:
            good_programs = rt.pool._programs
            rt.pool._programs = starved_programs(rt)
            with pytest.raises(PipelineDeadlockError):
                rt.train_step(x[:16], y[:16])
            assert_stats_untouched(rt)
            assert not rt.pool.wedged  # every worker reported; pool is intact
            # restore the real schedule: the runtime keeps working
            rt.pool._programs = good_programs
            loss = rt.train_step(x[:16], y[:16])
            assert np.isfinite(loss)
            rt.sync()  # the step's stats commit when it is collected
            assert rt.stats.steps == 1

    @pytest.mark.timeout(60)
    def test_silent_worker_wedges_and_close_returns(self, rng):
        """A worker that never reports back (here: stuck in a long compute)
        wedges the runtime: the driver gives up after deadlock_timeout +
        done_grace, close() still joins without hanging, and further steps
        are rejected explicitly."""
        x, y = toy_data(rng)
        m, rt = build(AsyncPipelineRuntime, deadlock_timeout=0.3, done_grace=0.5)
        inner_forward = rt.workers[1].segments[0].forward

        def slow_forward(ins):
            time.sleep(3.0)
            return inner_forward(ins)

        rt.workers[1].segments[0].forward = slow_forward
        with pytest.raises(PipelineDeadlockError):
            rt.train_step(x[:16], y[:16])
        assert rt.pool.wedged
        assert_stats_untouched(rt)
        with pytest.raises(RuntimeWedgedError, match="wedged"):
            rt.train_step(x[:16], y[:16])
        t0 = time.perf_counter()
        rt.close()
        assert time.perf_counter() - t0 < 5.0, "close() hung after a deadlock"

    @pytest.mark.timeout(60)
    def test_deadlock_restores_latest_weights(self, rng):
        """The weight-restore guarantee holds on the deadlock path too."""
        x, y = toy_data(rng)
        m, rt = build(AsyncPipelineRuntime, deadlock_timeout=0.3, done_grace=5.0)
        with rt:
            rt.train_step(x[:16], y[:16])
            rt.pool._programs = starved_programs(rt)
            with pytest.raises(PipelineDeadlockError):
                rt.train_step(x[:16], y[:16])
            for s, stage in enumerate(rt.stages):
                for p, stored in zip(
                    stage.params, rt.store.weights(s, rt.store.latest_version)
                ):
                    assert p.data is stored


class TestStatsInvariants:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("overlap", [False, True])
    @pytest.mark.parametrize("fuse", [True, False])
    def test_fraction_decomposition_is_normalized(self, rng, backend, overlap, fuse):
        """``bubble + transport + boundary_stall`` is a partition of lost
        step time plus idle, all over the same denominator (wall x workers),
        so the three fractions must each lie in [0, 1] and sum to <= 1 —
        regression for the transport fraction using a busy-time denominator
        while the others used wall time, which let the sum exceed 1.  Runs
        fused and unfused: the coarsened per-block done reports must not
        double-count stall or busy seconds into the fractions."""
        x, y = toy_data(rng)
        m, rt = build(
            AsyncPipelineRuntime,
            backend=backend,
            deadlock_timeout=30.0,
            overlap_boundary=overlap,
            fuse_waves=fuse,
        )
        with rt:
            for i in range(3):
                b = slice(i * 16, (i + 1) * 16)
                rt.train_step(x[b], y[b])
            rt.sync()
        assert rt.stats.steps == 3
        bubble = rt.stats.bubble_fraction()
        transport = rt.stats.transport_fraction()
        boundary = rt.stats.boundary_stall_fraction()
        for name, f in (("bubble", bubble), ("transport", transport),
                        ("boundary_stall", boundary)):
            assert 0.0 <= f <= 1.0, f"{name} fraction {f} outside [0, 1]"
        assert bubble + transport + boundary <= 1.0 + 1e-9, (
            f"fractions overlap: bubble={bubble} transport={transport} "
            f"boundary_stall={boundary}"
        )
        if backend == "thread":
            assert transport == 0.0, "thread hand-offs must not count as transport"

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("fuse", [True, False])
    def test_lane_breakdowns_sum_to_worker_totals(self, rng, fuse):
        """The coarsened done report carries one ``(waves, busy, stall,
        xfer)`` lane per block; per-worker busy/stall totals must equal the
        lane sums (no block's seconds counted twice, none dropped), the
        lanes must tile the step's wave schedule exactly, and
        commands == reports == number of blocks collected."""
        x, y = toy_data(rng)
        m, rt = build(AsyncPipelineRuntime, deadlock_timeout=30.0, fuse_waves=fuse)
        with rt:
            rt.train_step(x[:16], y[:16])
            rt.sync()
        lanes = rt.stats.last_lanes
        assert len(lanes) == rt.num_workers
        blocks = sum(len(per_worker) for per_worker in lanes)
        assert rt.stats.last_commands == blocks
        assert rt.stats.last_reports == blocks
        assert rt.stats.total_commands == blocks
        if not fuse:
            # unfused = the per-wave reference: one singleton block per wave
            assert all(n == 1 for per_worker in lanes for (n, *_rest) in per_worker)
        waves = sum(n for per_worker in lanes for (n, *_rest) in per_worker)
        assert waves == sum(p.num_waves for p in rt.pool._programs[True])
        for w, per_worker in enumerate(lanes):
            busy = sum(lane[1] for lane in per_worker)
            stall = sum(lane[2] for lane in per_worker)
            assert busy == pytest.approx(rt.stats.last_busy[w], rel=1e-9, abs=1e-12)
            assert stall == pytest.approx(rt.stats.last_stall[w], rel=1e-9, abs=1e-12)
            assert all(v >= 0.0 for lane in per_worker for v in lane)


class TestCloseIdempotency:
    """``close()`` must be safe to call at any moment, any number of
    times: after clean runs, after a wedge, and with work still in
    flight after a chaos-style kill — always prompt, never raising."""

    @pytest.mark.timeout(60)
    def test_double_close_after_clean_run(self, rng):
        x, y = toy_data(rng)
        m, rt = build(AsyncPipelineRuntime, deadlock_timeout=10.0)
        rt.train_step(x[:16], y[:16])
        rt.close()
        t0 = time.perf_counter()
        rt.close()  # second close: no-op, no error
        assert time.perf_counter() - t0 < 1.0

    @pytest.mark.timeout(60)
    def test_double_close_after_wedge(self, rng):
        """Wedge the pool with a silent worker, then close twice: both
        calls must return promptly (the second as a no-op) without trying
        to sync the unfinishable in-flight step."""
        x, y = toy_data(rng)
        m, rt = build(AsyncPipelineRuntime, deadlock_timeout=0.3, done_grace=0.5)
        inner_forward = rt.workers[1].segments[0].forward
        rt.workers[1].segments[0].forward = (
            lambda ins: (time.sleep(3.0), inner_forward(ins))[1]
        )
        with pytest.raises(PipelineDeadlockError):
            rt.train_step(x[:16], y[:16])
        assert rt.pool.wedged
        t0 = time.perf_counter()
        rt.close()
        rt.close()
        assert time.perf_counter() - t0 < 5.0, "close() hung after a wedge"

    @pytest.mark.timeout(60)
    def test_close_with_inflight_step_after_process_kill(self, rng):
        """Chaos-style: SIGKILL a process worker while a step is in
        flight (overlapped boundary, so the driver hasn't collected it),
        then close without ever touching the failure.  close() must
        abandon the unfinishable step instead of waiting out sync(), and
        a second close must still be a no-op."""
        x, y = toy_data(rng)
        m, rt = build(
            AsyncPipelineRuntime, backend="process",
            deadlock_timeout=0.5, done_grace=0.5, overlap_boundary=True,
        )
        rt.train_step(x[:16], y[:16])
        rt.train_step(x[16:32], y[16:32])  # one step now rides in flight
        rt.pool._procs[1].kill()
        rt.pool._procs[1].join(5.0)
        t0 = time.perf_counter()
        rt.close()
        rt.close()
        assert time.perf_counter() - t0 < 10.0, "close() hung on a dead worker"
        assert rt._closed
