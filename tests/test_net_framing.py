"""Property tests for the socket wire format.

The frame codec (``encode_arrays``/``decode_arrays``) is the network twin
of ``ShmRing.send_msg``/``recv_msg`` and carries the same bit-determinism
obligation: every payload must come back with the sender's exact value,
dtype, shape **and memory layout** (BLAS kernels take different
floating-point paths for different strides).  These tests sweep the
codec over shapes × dtypes × C/F/transposed layouts × ``None`` parts ×
zero-size arrays — mirroring the ShmRing layout regression suite — and
then prove the garbled-stream contract: any header that cannot describe
a real array raises :class:`FrameError`, never returns garbage.

The ``Transport`` half runs over ``socketpair()`` plus real UDS/TCP
listeners: round trips, deadline behaviour, peer-close semantics, and
corrupted-byte detection via the frame checksum.
"""

from __future__ import annotations

import socket
import struct
import zlib

import numpy as np
import pytest

from repro.pipeline.net import (
    _HDR,
    _MAGIC,
    K_ARRAYS,
    K_OBJ,
    FrameError,
    Listener,
    Transport,
    connect,
    decode_arrays,
    encode_arrays,
)
from repro.pipeline.registry import Backoff
from repro.pipeline.transport import (
    _RING_DTYPES,
    TransportClosed,
    TransportError,
    TransportTimeout,
    pack_lanes,
    unpack_lanes,
)

pytestmark = pytest.mark.net

SHAPES = [(), (0,), (3,), (2, 3), (4, 1, 3), (2, 3, 4, 5)]


def roundtrip(payload, step=0):
    got_step, got = decode_arrays(encode_arrays(payload, step))
    assert got_step == step
    return got


def assert_same_array(out, src):
    assert out.dtype == src.dtype
    assert out.shape == src.shape
    np.testing.assert_array_equal(out, src)
    if src.size:
        # Axes of size <= 1 carry arbitrary strides (relaxed stride
        # checking) and no BLAS kernel can observe them; compare the
        # strides that matter.  Zero-size arrays have none at all.
        def effective(a):
            return tuple(s for s, n in zip(a.strides, a.shape) if n > 1)

        assert effective(out) == effective(src), (
            "memory layout must survive the wire"
        )
    assert out.base is None or out.base.base is None  # owns fresh memory


def make_array(shape, dtype, order, rng):
    if np.issubdtype(dtype, np.floating):
        arr = rng.normal(size=shape).astype(dtype)
    elif dtype == np.bool_:
        arr = rng.integers(0, 2, size=shape).astype(np.bool_)
    else:
        arr = rng.integers(-50, 50, size=shape).astype(dtype)
    if order == "F":
        return np.asfortranarray(arr)
    if order == "T":
        if arr.ndim < 2:
            return arr
        return np.ascontiguousarray(arr.transpose()).transpose()
    return np.ascontiguousarray(arr)


class TestCodec:
    @pytest.mark.parametrize("dtype", _RING_DTYPES, ids=str)
    @pytest.mark.parametrize("order", ["C", "F", "T"])
    def test_single_arrays_survive_value_dtype_shape_layout(
        self, rng, dtype, order
    ):
        for shape in SHAPES:
            src = make_array(shape, dtype, order, rng)
            assert_same_array(roundtrip(src), src)

    def test_bare_array_stays_bare_and_tuple_stays_tuple(self, rng):
        bare = rng.normal(size=(3, 2))
        out = roundtrip(bare)
        assert isinstance(out, np.ndarray)
        out = roundtrip((bare,))
        assert isinstance(out, tuple) and len(out) == 1

    def test_multipart_tuples_with_none_and_zero_size(self, rng):
        payload = (
            rng.normal(size=(2, 3)),
            None,
            np.zeros((0, 4)),
            rng.integers(0, 9, size=(5,)),
            None,
            np.float64(3.25).reshape(()),  # 0-d
        )
        out = roundtrip(payload, step=7)
        assert len(out) == len(payload)
        for got, src in zip(out, payload):
            if src is None:
                assert got is None
            else:
                assert_same_array(got, np.asarray(src))

    def test_empty_tuple(self):
        assert roundtrip(()) == ()

    def test_step_tags_roundtrip_including_negative(self, rng):
        arr = rng.normal(size=(2,))
        for step in (0, 1, -1, 2**40, -(2**40)):
            got_step, _ = decode_arrays(encode_arrays(arr, step))
            assert got_step == step

    def test_noncontiguous_view_values_survive(self, rng):
        base = rng.normal(size=(4, 6, 5))
        view = base[:, ::2, :]  # gaps: C-copy fallback, values must survive
        np.testing.assert_array_equal(roundtrip(view), view)

    def test_unsupported_dtype_is_rejected_at_encode(self):
        with pytest.raises(TypeError, match="cannot frame dtype"):
            encode_arrays(np.zeros(3, dtype=np.complex128), 0)


class TestGarbledFrames:
    """Every malformed body must raise FrameError — never garbage arrays,
    never an unbounded allocation."""

    def body(self, rng):
        return bytearray(
            encode_arrays((rng.normal(size=(2, 3)), rng.normal(size=(4,))), 5)
        )

    def test_truncated_everywhere_is_rejected(self, rng):
        body = self.body(rng)
        for cut in (0, 5, 23, 24, 40, len(body) // 2, len(body) - 1):
            with pytest.raises(FrameError):
                decode_arrays(bytes(body[:cut]))

    def test_trailing_bytes_are_rejected(self, rng):
        with pytest.raises(FrameError, match="trailing"):
            decode_arrays(bytes(self.body(rng)) + b"\x00")

    def test_bad_payload_kind_and_counts(self, rng):
        body = self.body(rng)
        bad = body.copy()
        struct.pack_into("<q", bad, 8, 7)  # payload kind 7
        with pytest.raises(FrameError, match="garbled array frame header"):
            decode_arrays(bytes(bad))
        bad = body.copy()
        struct.pack_into("<q", bad, 16, -2)  # negative nparts
        with pytest.raises(FrameError):
            decode_arrays(bytes(bad))

    def test_bad_dtype_code_and_ndim(self, rng):
        body = self.body(rng)
        bad = body.copy()
        struct.pack_into("<q", bad, 24 + 8, 99)  # dtype code of part 0
        with pytest.raises(FrameError, match="garbled part header"):
            decode_arrays(bytes(bad))
        bad = body.copy()
        struct.pack_into("<q", bad, 24 + 16, 99)  # ndim of part 0
        with pytest.raises(FrameError, match="garbled part header"):
            decode_arrays(bytes(bad))

    def test_perm_that_is_not_a_permutation(self, rng):
        body = self.body(rng)
        # part 0 is (2, 3): base 24 + part header 32 + shape 16 → perm at 72
        struct.pack_into("<qq", body, 72, 0, 0)
        with pytest.raises(FrameError, match="perm"):
            decode_arrays(bytes(body))

    def test_negative_shape_is_rejected(self, rng):
        body = self.body(rng)
        struct.pack_into("<q", body, 24 + 32, -3)  # first shape entry
        with pytest.raises(FrameError):
            decode_arrays(bytes(body))

    def test_nbytes_header_mismatch(self, rng):
        body = self.body(rng)
        # nbytes field of part 0 (claims 48 for a (2,3) float64)
        struct.pack_into("<q", body, 24 + 24, 8)
        with pytest.raises(FrameError, match="does not match its header"):
            decode_arrays(bytes(body))


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    ta, tb = Transport(a), Transport(b)
    yield ta, tb
    ta.close()
    tb.close()


class TestTransport:
    def test_msg_roundtrip_with_step_tags(self, rng, pair):
        ta, tb = pair
        src = (rng.normal(size=(3, 4)), None, np.asfortranarray(rng.normal(size=(2, 2))))
        ta.send_msg(src, step=-3, timeout=5.0)
        step, out = tb.recv_msg(timeout=5.0)
        assert step == -3
        for got, want in zip(out, src):
            if want is None:
                assert got is None
            else:
                assert_same_array(got, want)
        assert ta.xfer_seconds > 0 and tb.xfer_seconds > 0

    def test_obj_roundtrip(self, pair):
        ta, tb = pair
        ta.send_obj(("hello", 3, {"a": [1, 2]}), timeout=5.0)
        assert tb.recv_obj(timeout=5.0) == ("hello", 3, {"a": [1, 2]})

    def test_recv_deadline_raises_typed_timeout(self, pair):
        _, tb = pair
        with pytest.raises(TransportTimeout, match="stalled"):
            tb.recv_frame(timeout=0.1)

    def test_peer_close_raises_typed_closed(self, pair):
        ta, tb = pair
        ta.close()
        with pytest.raises(TransportClosed, match="closed the connection"):
            tb.recv_frame(timeout=5.0)

    def test_truncated_frame_raises_closed_mid_frame(self, pair):
        ta, tb = pair
        body = encode_arrays(np.zeros(8), 1)
        header = _HDR.pack(_MAGIC, K_ARRAYS, len(body), zlib.crc32(body))
        ta._sock.sendall(header + body[: len(body) // 2])
        ta.close()
        with pytest.raises(TransportClosed, match="mid-frame"):
            tb.recv_frame(timeout=5.0)

    def test_flipped_byte_fails_the_checksum(self, pair):
        ta, tb = pair
        body = bytearray(encode_arrays(np.arange(8.0), 1))
        header = _HDR.pack(_MAGIC, K_ARRAYS, len(body), zlib.crc32(bytes(body)))
        body[-1] ^= 0x40  # corrupt one payload byte in transit
        ta._sock.sendall(header + bytes(body))
        with pytest.raises(FrameError, match="checksum"):
            tb.recv_frame(timeout=5.0)

    def test_bad_magic_is_rejected(self, pair):
        ta, tb = pair
        ta._sock.sendall(_HDR.pack(0xDEADBEEF, K_OBJ, 0, 0))
        with pytest.raises(FrameError, match="magic"):
            tb.recv_frame(timeout=5.0)

    def test_absurd_length_is_rejected_before_allocating(self, pair):
        ta, tb = pair
        ta._sock.sendall(_HDR.pack(_MAGIC, K_OBJ, 1 << 50, 0))
        with pytest.raises(FrameError, match="cap"):
            tb.recv_frame(timeout=5.0)

    def test_wrong_frame_kind_for_msg(self, pair):
        ta, tb = pair
        ta.send_obj("not arrays", timeout=5.0)
        with pytest.raises(FrameError, match="expected an ARRAYS frame"):
            tb.recv_msg(timeout=5.0)

    def test_send_after_close_raises_closed(self, pair):
        ta, _ = pair
        ta.close()
        with pytest.raises(TransportClosed, match="closed"):
            ta.send_obj("x", timeout=1.0)

    def test_concurrent_send_and_recv_deadlines_are_independent(self, pair):
        # The endpoint is explicitly shared between a sender and a
        # receiver thread (driver reader vs issue(); worker serve loop vs
        # heartbeat).  Deadlines must be per-operation: a finite send
        # timeout racing a blocking recv on the same socket must neither
        # time the recv out spuriously nor let the send inherit the
        # recv's infinite wait.
        import threading

        ta, tb = pair
        errs: list[BaseException] = []
        got: list[object] = []

        def receiver():
            try:
                for _ in range(200):
                    got.append(tb.recv_obj(None))  # blocking, no deadline
            except BaseException as exc:  # noqa: BLE001 — asserted below
                errs.append(exc)

        def sender():
            try:
                for i in range(200):
                    ta.send_obj(("msg", i), timeout=0.05)
            except BaseException as exc:  # noqa: BLE001 — asserted below
                errs.append(exc)

        threads = [
            threading.Thread(target=receiver),
            threading.Thread(target=sender),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errs
        assert not any(t.is_alive() for t in threads)
        assert got == [("msg", i) for i in range(200)]
        # A finite recv deadline still fires on the shared socket.
        with pytest.raises(TransportTimeout, match="stalled"):
            tb.recv_frame(timeout=0.1)


class TestEndpoints:
    def test_uds_listener_connect_roundtrip(self, rng, tmp_path):
        lis = Listener(f"uds:{tmp_path}/s")
        try:
            dial = connect(lis.address, timeout=5.0)
            serve = lis.accept(timeout=5.0)
            arr = rng.normal(size=(4, 4))
            dial.send_msg(arr, step=2, timeout=5.0)
            step, out = serve.recv_msg(timeout=5.0)
            assert step == 2
            np.testing.assert_array_equal(out, arr)
            dial.close(); serve.close()
        finally:
            lis.close()

    def test_tcp_listener_resolves_ephemeral_port(self, rng):
        lis = Listener("tcp:127.0.0.1:0")
        try:
            assert not lis.address.endswith(":0")
            dial = connect(lis.address, timeout=5.0)
            serve = lis.accept(timeout=5.0)
            serve.send_obj("over tcp", timeout=5.0)
            assert dial.recv_obj(timeout=5.0) == "over tcp"
            dial.close(); serve.close()
        finally:
            lis.close()

    def test_accept_deadline_is_typed(self, tmp_path):
        lis = Listener(f"uds:{tmp_path}/s2")
        try:
            with pytest.raises(TransportTimeout, match="no connection"):
                lis.accept(timeout=0.1)
        finally:
            lis.close()

    def test_connect_retries_then_reports_attempt_count(self, tmp_path):
        backoff = Backoff(base=0.01, ceiling=0.02, total=0.2)
        with pytest.raises(TransportTimeout, match="attempts"):
            connect(f"uds:{tmp_path}/nobody-home", timeout=0.2, backoff=backoff)

    def test_connect_wins_a_race_with_late_bind(self, tmp_path):
        """Dialling before the peer binds must succeed within the backoff
        budget — the all-dial-then-accept bring-up depends on it."""
        import threading

        path = f"{tmp_path}/late"
        holder = {}

        def late_bind():
            import time
            time.sleep(0.15)
            holder["lis"] = Listener(f"uds:{path}")

        t = threading.Thread(target=late_bind)
        t.start()
        try:
            dial = connect(f"uds:{path}", timeout=5.0)
            t.join()
            serve = holder["lis"].accept(timeout=5.0)
            dial.send_obj("made it", timeout=5.0)
            assert serve.recv_obj(timeout=5.0) == "made it"
            dial.close(); serve.close()
        finally:
            t.join()
            if "lis" in holder:
                holder["lis"].close()

    def test_bad_address_scheme_rejected(self):
        with pytest.raises(ValueError):
            Listener("carrier-pigeon:coop:7")


class TestLaneFraming:
    """Coarsened done reports: with fused wave programs one framed done
    message per step carries the worker's whole per-block lane breakdown
    (``pack_lanes``), and the driver rebuilds it with ``unpack_lanes`` —
    same typed-failure contract as every other decode path."""

    def test_done_frame_carries_block_lanes(self, pair):
        ta, tb = pair
        lanes = pack_lanes([(4, 0.5, 0.0, 0.125), (1, 0.25, 0.0625, 0.0)])
        done = ("done", (2, 7, "ok", 0.75, 0.125, 0.0625, (None, None, [], lanes)))
        ta.send_obj(done, timeout=5.0)
        tag, (w, seq, kind, busy, xfer, stall, payload) = tb.recv_obj(timeout=5.0)
        assert (tag, w, seq, kind) == ("done", 2, 7, "ok")
        assert unpack_lanes(payload[3]) == [
            (4, 0.5, 0.0, 0.125),
            (1, 0.25, 0.0625, 0.0),
        ]

    def test_pack_normalises_numpy_scalars(self):
        lanes = pack_lanes([(np.int64(3), np.float64(0.5), 0.0, np.float32(0.0))])
        assert lanes == ((3, 0.5, 0.0, 0.0),)
        assert all(
            type(v) in (int, float) for lane in lanes for v in lane
        ), "packed lanes must pickle as plain builtins"

    def test_unpack_rejects_malformed_lanes(self):
        for bad in (
            [(1, 0.5)],            # wrong arity
            [("x", 0.0, 0.0, 0.0)],  # non-numeric field
            [None],                # not a record at all
            3,                     # not iterable
        ):
            with pytest.raises(TransportError, match="lanes"):
                unpack_lanes(bad)

    def test_unpack_rejects_negative_fields(self):
        with pytest.raises(TransportError, match="negative"):
            unpack_lanes([(1, -0.5, 0.0, 0.0)])
        with pytest.raises(TransportError, match="negative"):
            unpack_lanes([(-1, 0.0, 0.0, 0.0)])

    def test_empty_lanes_roundtrip(self):
        assert pack_lanes([]) == ()
        assert unpack_lanes(()) == []
