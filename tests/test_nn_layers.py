"""Gradient checks and behaviour tests for every layer type.

Each layer's analytic backward is validated against central differences for
both parameter gradients and input gradients — the foundation the entire
pipeline simulation rests on.
"""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Bias,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    GroupNorm,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    MultiHeadAttention,
    PositionalEncoding,
    ReLU,
    Sigmoid,
    Tanh,
    causal_mask,
    padding_mask,
)
from tests.helpers import check_input_grad, check_param_grads


def _scalar_loss(out, w):
    return float(np.sum(out * w))


class TestLinear:
    def test_forward_shape(self, rng):
        m = Linear(5, 3, rng)
        assert m(rng.normal(size=(4, 5))).shape == (4, 3)

    def test_forward_3d(self, rng):
        m = Linear(5, 3, rng)
        assert m(rng.normal(size=(2, 7, 5))).shape == (2, 7, 3)

    def test_rejects_wrong_dim(self, rng):
        with pytest.raises(ValueError):
            Linear(5, 3, rng)(rng.normal(size=(4, 4)))

    def test_grad_check(self, rng, rng2):
        m = Linear(4, 3, rng)
        x = rng.normal(size=(5, 4))
        w = rng.normal(size=(5, 3))

        def loss():
            return _scalar_loss(m(x), w)

        def backward():
            m(x)
            m.backward(w)

        check_param_grads(m, loss, backward, rng2)

    def test_input_grad_check(self, rng, rng2):
        m = Linear(4, 3, rng)
        x = rng.normal(size=(5, 4))
        w = rng.normal(size=(5, 3))
        m(x)
        dx = m.backward(w)
        check_input_grad(lambda xx: _scalar_loss(m(xx), w), x, dx, rng2)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng, bias=False)._x = None or Linear(2, 2, rng).backward(np.ones((1, 2)))

    def test_input_grad_uses_backward_time_weights(self, rng):
        """The defining pipeline property: dx is computed with the weights
        present at backward time, not forward time."""
        m = Linear(3, 2, rng, bias=False)
        x = rng.normal(size=(4, 3))
        m(x)
        w_new = rng.normal(size=(3, 2))
        m.weight.data = w_new
        g = rng.normal(size=(4, 2))
        dx = m.backward(g)
        np.testing.assert_allclose(dx, g @ w_new.T)

    def test_weight_grad_uses_cached_input(self, rng):
        m = Linear(3, 2, rng, bias=False)
        x = rng.normal(size=(4, 3))
        m(x)
        m.weight.data = rng.normal(size=(3, 2))  # swap weights post-forward
        g = rng.normal(size=(4, 2))
        m.backward(g)
        np.testing.assert_allclose(m.weight.grad, x.T @ g)


class TestBiasFlatten:
    def test_bias_grad(self, rng, rng2):
        m = Bias(4)
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(3, 4))

        def loss():
            return _scalar_loss(m(x), w)

        def backward():
            m(x)
            m.backward(w)

        check_param_grads(m, loss, backward, rng2)

    def test_flatten_roundtrip(self, rng):
        m = Flatten()
        x = rng.normal(size=(2, 3, 4))
        y = m(x)
        assert y.shape == (2, 12)
        assert m.backward(y).shape == x.shape


class TestActivations:
    @pytest.mark.parametrize("act_cls", [ReLU, GELU, Tanh, Sigmoid])
    def test_input_grad(self, act_cls, rng, rng2):
        m = act_cls()
        x = rng.normal(size=(3, 4)) + 0.05  # keep away from ReLU kink
        w = rng.normal(size=(3, 4))
        m(x)
        dx = m.backward(w)
        check_input_grad(lambda xx: _scalar_loss(m(xx), w), x, dx, rng2)

    def test_relu_zeroes_negatives(self):
        out = ReLU()(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0, 0, 2])

    def test_identity_passthrough(self, rng):
        m = Identity()
        x = rng.normal(size=(2, 2))
        np.testing.assert_array_equal(m(x), x)
        np.testing.assert_array_equal(m.backward(x), x)


class TestConv2d:
    def test_forward_shape(self, rng):
        m = Conv2d(3, 5, 3, rng, stride=1, padding=1)
        assert m(rng.normal(size=(2, 3, 8, 8))).shape == (2, 5, 8, 8)

    def test_forward_stride(self, rng):
        m = Conv2d(3, 5, 3, rng, stride=2, padding=1)
        assert m(rng.normal(size=(2, 3, 8, 8))).shape == (2, 5, 4, 4)

    def test_rejects_wrong_channels(self, rng):
        with pytest.raises(ValueError):
            Conv2d(3, 5, 3, rng)(rng.normal(size=(1, 2, 8, 8)))

    def test_matches_direct_convolution(self, rng):
        m = Conv2d(1, 1, 3, rng, padding=0, bias=False)
        x = rng.normal(size=(1, 1, 5, 5))
        out = m(x)
        k = m.weight.data[0, 0]
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = np.sum(x[0, 0, i : i + 3, j : j + 3] * k)
        np.testing.assert_allclose(out[0, 0], expected)

    def test_grad_check(self, rng, rng2):
        m = Conv2d(2, 3, 3, rng, stride=2, padding=1)
        x = rng.normal(size=(2, 2, 6, 6))
        w = rng.normal(size=(2, 3, 3, 3))

        def loss():
            return _scalar_loss(m(x), w)

        def backward():
            m(x)
            m.backward(w)

        check_param_grads(m, loss, backward, rng2)

    def test_input_grad_check(self, rng, rng2):
        m = Conv2d(2, 3, 3, rng, padding=1)
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(1, 3, 5, 5))
        m(x)
        dx = m.backward(w)
        check_input_grad(lambda xx: _scalar_loss(m(xx), w), x, dx, rng2)


class TestNorms:
    def test_batchnorm_normalizes(self, rng):
        m = BatchNorm2d(4)
        x = rng.normal(2.0, 3.0, size=(8, 4, 5, 5))
        y = m(x)
        assert abs(y.mean()) < 1e-7
        assert y.std() == pytest.approx(1.0, rel=1e-2)

    def test_batchnorm_running_stats_used_in_eval(self, rng):
        m = BatchNorm2d(2, momentum=1.0)
        x = rng.normal(5.0, 2.0, size=(16, 2, 4, 4))
        m(x)
        m.eval()
        y = m(x)
        assert abs(y.mean()) < 0.1

    def test_batchnorm_grad_check(self, rng, rng2):
        m = BatchNorm2d(3)
        x = rng.normal(size=(4, 3, 2, 2))
        w = rng.normal(size=(4, 3, 2, 2))

        def loss():
            return _scalar_loss(m(x), w)

        def backward():
            m(x)
            m.backward(w)

        check_param_grads(m, loss, backward, rng2)

    def test_batchnorm_input_grad(self, rng, rng2):
        m = BatchNorm2d(2)
        x = rng.normal(size=(3, 2, 2, 2))
        w = rng.normal(size=(3, 2, 2, 2))
        m(x)
        dx = m.backward(w)
        check_input_grad(lambda xx: _scalar_loss(m(xx), w), x, dx, rng2, atol=1e-4)

    def test_groupnorm_independent_of_batch(self, rng):
        """GroupNorm output for sample i doesn't depend on other samples —
        why the paper recommends it for tiny microbatches."""
        m = GroupNorm(2, 4)
        x = rng.normal(size=(4, 4, 3, 3))
        full = m(x)
        single = m(x[:1])
        np.testing.assert_allclose(full[:1], single)

    def test_groupnorm_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 4)

    def test_groupnorm_grad_check(self, rng, rng2):
        m = GroupNorm(2, 4)
        x = rng.normal(size=(2, 4, 3, 3))
        w = rng.normal(size=(2, 4, 3, 3))

        def loss():
            return _scalar_loss(m(x), w)

        def backward():
            m(x)
            m.backward(w)

        check_param_grads(m, loss, backward, rng2)

    def test_groupnorm_input_grad(self, rng, rng2):
        m = GroupNorm(2, 4)
        x = rng.normal(size=(2, 4, 2, 2))
        w = rng.normal(size=(2, 4, 2, 2))
        m(x)
        dx = m.backward(w)
        check_input_grad(lambda xx: _scalar_loss(m(xx), w), x, dx, rng2, atol=1e-4)

    def test_layernorm_normalizes_rows(self, rng):
        m = LayerNorm(8)
        x = rng.normal(3.0, 2.0, size=(4, 8))
        y = m(x)
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-10)

    def test_layernorm_grad_check(self, rng, rng2):
        m = LayerNorm(6)
        x = rng.normal(size=(3, 6))
        w = rng.normal(size=(3, 6))

        def loss():
            return _scalar_loss(m(x), w)

        def backward():
            m(x)
            m.backward(w)

        check_param_grads(m, loss, backward, rng2)

    def test_layernorm_input_grad(self, rng, rng2):
        m = LayerNorm(6)
        x = rng.normal(size=(2, 4, 6))
        w = rng.normal(size=(2, 4, 6))
        m(x)
        dx = m.backward(w)
        check_input_grad(lambda xx: _scalar_loss(m(xx), w), x, dx, rng2, atol=1e-4)


class TestPooling:
    def test_avgpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = AvgPool2d(2)(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    @pytest.mark.parametrize("pool_cls", [AvgPool2d, MaxPool2d])
    def test_pool_input_grad(self, pool_cls, rng, rng2):
        m = pool_cls(2)
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(2, 3, 2, 2))
        m(x)
        dx = m.backward(w)
        check_input_grad(lambda xx: _scalar_loss(m(xx), w), x, dx, rng2)

    def test_global_avg_pool(self, rng):
        m = GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(m(x), x.mean(axis=(2, 3)))

    def test_global_avg_pool_grad(self, rng, rng2):
        m = GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(2, 3))
        m(x)
        dx = m.backward(w)
        check_input_grad(lambda xx: _scalar_loss(m(xx), w), x, dx, rng2)


class TestEmbedding:
    def test_lookup(self, rng):
        m = Embedding(10, 4, rng)
        idx = np.array([[1, 2], [3, 1]])
        out = m(idx)
        np.testing.assert_allclose(out[0, 0], m.weight.data[1])
        np.testing.assert_allclose(out[1, 1], m.weight.data[1])

    def test_rejects_float_indices(self, rng):
        with pytest.raises(TypeError):
            Embedding(10, 4, rng)(np.array([[1.5]]))

    def test_rejects_out_of_vocab(self, rng):
        with pytest.raises(ValueError):
            Embedding(10, 4, rng)(np.array([[10]]))

    def test_scatter_add_grad(self, rng):
        m = Embedding(5, 3, rng)
        idx = np.array([[0, 0, 1]])
        m(idx)
        g = np.ones((1, 3, 3))
        m.backward(g)
        np.testing.assert_allclose(m.weight.grad[0], [2, 2, 2])  # two hits
        np.testing.assert_allclose(m.weight.grad[1], [1, 1, 1])
        np.testing.assert_allclose(m.weight.grad[2], [0, 0, 0])

    def test_cache_stack_for_shared_use(self, rng):
        """Tied embedding called twice must pop backward caches LIFO."""
        m = Embedding(5, 2, rng)
        m(np.array([[0]]))
        m(np.array([[1]]))
        m.backward(np.ones((1, 1, 2)))  # pops idx=1
        np.testing.assert_allclose(m.weight.grad[1], [1, 1])
        np.testing.assert_allclose(m.weight.grad[0], [0, 0])
        m.backward(np.ones((1, 1, 2)))  # pops idx=0
        np.testing.assert_allclose(m.weight.grad[0], [1, 1])

    def test_positional_encoding_added(self, rng):
        pe = PositionalEncoding(8, max_len=16)
        x = np.zeros((1, 4, 8))
        out = pe(x)
        np.testing.assert_allclose(out[0], pe.pe[:4])

    def test_positional_encoding_rejects_long_seq(self):
        pe = PositionalEncoding(8, max_len=4)
        with pytest.raises(ValueError):
            pe(np.zeros((1, 5, 8)))


class TestDropout:
    def test_eval_is_identity(self, rng):
        m = Dropout(0.5, rng)
        m.eval()
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(m(x), x)

    def test_p_zero_is_identity(self, rng):
        m = Dropout(0.0, rng)
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(m(x), x)

    def test_train_preserves_expectation(self, rng):
        m = Dropout(0.3, rng)
        x = np.ones((200, 200))
        assert m(x).mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self, rng):
        m = Dropout(0.5, rng)
        x = np.ones((8, 8))
        y = m(x)
        g = m.backward(np.ones_like(x))
        np.testing.assert_array_equal((y == 0), (g == 0))

    def test_rejects_bad_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestAttention:
    def test_forward_shape(self, rng):
        m = MultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(2, 5, 8))
        assert m(x, x, x).shape == (2, 5, 8)

    def test_rejects_bad_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(8, 3, rng)

    def test_causal_mask_blocks_future(self, rng):
        m = MultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(1, 4, 8))
        mask = causal_mask(4)
        out1 = m(x, x, x, mask)
        x2 = x.copy()
        x2[0, 3] += 10.0  # perturb the last position
        out2 = m(x2, x2, x2, mask)
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-10)

    def test_padding_mask_shape(self):
        mask = padding_mask(np.array([2, 4]), 4)
        assert mask.shape == (2, 1, 1, 4)
        assert mask[0, 0, 0].tolist() == [True, True, False, False]

    def test_grad_check_self_attention(self, rng, rng2):
        m = MultiHeadAttention(6, 2, rng)
        x = rng.normal(size=(2, 3, 6))
        w = rng.normal(size=(2, 3, 6))

        def loss():
            return _scalar_loss(m(x, x, x), w)

        def backward():
            m(x, x, x)
            dq, dk, dv = m.backward(w)

        check_param_grads(m, loss, backward, rng2, atol=1e-4)

    def test_input_grad_self_attention(self, rng, rng2):
        m = MultiHeadAttention(6, 2, rng)
        x = rng.normal(size=(1, 3, 6))
        w = rng.normal(size=(1, 3, 6))
        m(x, x, x)
        dq, dk, dv = m.backward(w)
        dx = dq + dk + dv
        check_input_grad(lambda xx: _scalar_loss(m(xx, xx, xx), w), x, dx, rng2, atol=1e-4)

    def test_cross_attention_grads_split(self, rng, rng2):
        m = MultiHeadAttention(6, 2, rng)
        q = rng.normal(size=(1, 2, 6))
        kv = rng.normal(size=(1, 4, 6))
        w = rng.normal(size=(1, 2, 6))
        m(q, kv, kv)
        dq, dk, dv = m.backward(w)
        assert dq.shape == q.shape
        assert dk.shape == kv.shape and dv.shape == kv.shape
        check_input_grad(lambda qq: _scalar_loss(m(qq, kv, kv), w), q, dq, rng2, atol=1e-4)
