"""Model zoo tests: shapes, gradients end-to-end, shared-embedding rules."""

import numpy as np
import pytest

from repro.models import (
    MLP,
    LinearRegressionModel,
    ResNet,
    Transformer,
    TransformerConfig,
    resnet_deep,
    resnet_tiny,
    transformer_tiny,
)
from repro.nn import CrossEntropyLoss, MSELoss, SequenceCrossEntropyLoss
from tests.helpers import check_param_grads


class TestMLP:
    def test_shapes(self, rng):
        m = MLP([4, 8, 3], rng)
        assert m(rng.normal(size=(5, 4))).shape == (5, 3)

    def test_rejects_short_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_end_to_end_grad_check(self, rng, rng2):
        m = MLP([4, 6, 3], rng, activation="gelu")
        loss = CrossEntropyLoss()
        x = rng.normal(size=(5, 4))
        y = np.array([0, 1, 2, 0, 1])

        def loss_fn():
            return loss(m(x), y)

        def backward():
            loss(m(x), y)
            m.backward(loss.backward())

        check_param_grads(m, loss_fn, backward, rng2)

    def test_trains_on_separable_data(self, rng):
        from repro.optim import SGD

        m = MLP([2, 16, 2], rng)
        loss = CrossEntropyLoss()
        opt = SGD(m.parameters(), lr=0.1, momentum=0.9)
        x = np.concatenate([rng.normal(-2, 0.5, (32, 2)), rng.normal(2, 0.5, (32, 2))])
        y = np.array([0] * 32 + [1] * 32)
        first = None
        for _ in range(60):
            opt.zero_grad()
            val = loss(m(x), y)
            if first is None:
                first = val
            m.backward(loss.backward())
            opt.step()
        assert val < 0.1 < first


class TestLinearRegression:
    def test_forward_shape(self, rng):
        m = LinearRegressionModel(5, rng)
        assert m(rng.normal(size=(7, 5))).shape == (7,)

    def test_largest_curvature_is_hessian_eig(self, rng):
        x = rng.normal(size=(50, 4))
        lam = LinearRegressionModel.largest_curvature(x)
        h = 2 * x.T @ x / 50
        assert lam == pytest.approx(np.linalg.eigvalsh(h)[-1])

    def test_grad_check(self, rng, rng2):
        m = LinearRegressionModel(3, rng, bias=True)
        loss = MSELoss()
        x = rng.normal(size=(6, 3))
        y = rng.normal(size=6)

        def loss_fn():
            return loss(m(x), y)

        def backward():
            loss(m(x), y)
            m.backward(loss.backward())

        check_param_grads(m, loss_fn, backward, rng2)


class TestResNet:
    def test_forward_shape(self, rng):
        m = resnet_tiny(rng)
        assert m(rng.normal(size=(2, 3, 8, 8))).shape == (2, 10)

    def test_rejects_misaligned_config(self, rng):
        with pytest.raises(ValueError):
            ResNet(rng, blocks_per_stage=(1, 1), channels_per_stage=(8,))

    def test_deep_variant_has_more_params(self, rng):
        assert resnet_deep(rng).num_parameters() > resnet_tiny(rng).num_parameters()

    def test_end_to_end_grad_check(self, rng, rng2):
        m = ResNet(rng, blocks_per_stage=(1,), channels_per_stage=(4,), norm="group")
        loss = CrossEntropyLoss()
        x = rng.normal(size=(2, 3, 6, 6))
        y = np.array([1, 3])

        def loss_fn():
            return loss(m(x), y)

        def backward():
            loss(m(x), y)
            m.backward(loss.backward())

        check_param_grads(m, loss_fn, backward, rng2, samples_per_param=2, atol=1e-4)

    def test_batchnorm_variant_runs(self, rng):
        m = ResNet(rng, blocks_per_stage=(1,), channels_per_stage=(4,), norm="batch")
        out = m(rng.normal(size=(4, 3, 6, 6)))
        loss = CrossEntropyLoss()
        loss(out, np.array([0, 1, 2, 3]))
        m.backward(loss.backward())  # should not raise

    def test_projection_shortcut_on_downsample(self, rng):
        m = ResNet(rng, blocks_per_stage=(1, 1), channels_per_stage=(4, 8))
        blocks = m.body.layers
        assert not blocks[0].has_projection
        assert blocks[1].has_projection  # channel + stride change


class TestTransformer:
    def test_forward_shape(self, rng):
        m = transformer_tiny(rng, vocab=16)
        src = rng.integers(3, 16, size=(2, 5))
        tgt = rng.integers(3, 16, size=(2, 4))
        assert m(src, tgt).shape == (2, 4, 16)

    def test_shared_embedding_requires_equal_vocab(self):
        with pytest.raises(ValueError):
            TransformerConfig(src_vocab=8, tgt_vocab=9, share_embeddings=True)

    def test_shared_embeddings_reduce_param_count(self, rng):
        tied = transformer_tiny(np.random.default_rng(0), share_embeddings=True)
        untied = transformer_tiny(np.random.default_rng(0), share_embeddings=False)
        # tied removes one embedding matrix and the output projection
        assert tied.num_parameters() < untied.num_parameters()

    def test_end_to_end_grad_check_untied(self, rng, rng2):
        cfg = TransformerConfig(
            src_vocab=12, tgt_vocab=12, d_model=8, num_heads=2,
            num_encoder_layers=1, num_decoder_layers=1, d_ff=16,
        )
        m = Transformer(cfg, rng)
        loss = SequenceCrossEntropyLoss(pad_id=0)
        src = np.array([[3, 4, 5]])
        tgt_in = np.array([[1, 6, 7]])
        tgt_out = np.array([[6, 7, 2]])

        def loss_fn():
            return loss(m(src, tgt_in), tgt_out)

        def backward():
            loss(m(src, tgt_in), tgt_out)
            m.backward(loss.backward())

        check_param_grads(m, loss_fn, backward, rng2, samples_per_param=2, atol=1e-4)

    def test_end_to_end_grad_check_tied(self, rng, rng2):
        cfg = TransformerConfig(
            src_vocab=12, tgt_vocab=12, d_model=8, num_heads=2,
            num_encoder_layers=1, num_decoder_layers=1, d_ff=16,
            share_embeddings=True,
        )
        m = Transformer(cfg, rng)
        loss = SequenceCrossEntropyLoss(pad_id=0)
        src = np.array([[3, 4, 5]])
        tgt_in = np.array([[1, 6, 7]])
        tgt_out = np.array([[6, 7, 2]])

        def loss_fn():
            return loss(m(src, tgt_in), tgt_out)

        def backward():
            loss(m(src, tgt_in), tgt_out)
            m.backward(loss.backward())

        check_param_grads(m, loss_fn, backward, rng2, samples_per_param=2, atol=1e-4)

    def test_causality(self, rng):
        """Changing a later target token cannot change earlier logits."""
        m = transformer_tiny(rng, vocab=16)
        m.eval()
        src = rng.integers(3, 16, size=(1, 5))
        tgt = rng.integers(3, 16, size=(1, 4))
        out1 = m(src, tgt)
        tgt2 = tgt.copy()
        tgt2[0, 3] = (tgt2[0, 3] - 3 + 1) % 13 + 3
        out2 = m(src, tgt2)
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-10)

    def test_greedy_decode_shape_and_bos(self, rng):
        m = transformer_tiny(rng, vocab=16)
        src = rng.integers(3, 16, size=(3, 5))
        out = m.greedy_decode(src, max_len=7)
        assert out.shape[0] == 3 and out.shape[1] <= 7
        assert (out[:, 0] == m.cfg.bos_id).all()

    def test_greedy_decode_restores_training_mode(self, rng):
        m = transformer_tiny(rng, vocab=16)
        m.train()
        m.greedy_decode(rng.integers(3, 16, size=(1, 4)), max_len=5)
        assert m.training

    def test_padding_in_src_ignored(self, rng):
        """Logits must be identical whether src padding is present or not."""
        m = transformer_tiny(rng, vocab=16)
        m.eval()
        src = np.array([[3, 4, 5, 0, 0]])
        src_short = np.array([[3, 4, 5]])
        tgt = np.array([[1, 6]])
        np.testing.assert_allclose(m(src, tgt), m(src_short, tgt), atol=1e-10)
