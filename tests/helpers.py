"""Shared test utilities: seeded generators and numerical gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module, Parameter


def make_rng(seed: int = 0) -> np.random.Generator:
    """The one way test code builds a Generator — all test randomness flows
    through the ``rng`` fixture (see ``conftest.py``), which calls this."""
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))


def numeric_param_grad(
    loss_fn: Callable[[], float], p: Parameter, idx: tuple, eps: float = 1e-6
) -> float:
    """Central-difference derivative of ``loss_fn()`` w.r.t. ``p.data[idx]``."""
    old = p.data[idx]
    p.data[idx] = old + eps
    lp = loss_fn()
    p.data[idx] = old - eps
    lm = loss_fn()
    p.data[idx] = old
    return (lp - lm) / (2 * eps)


def check_param_grads(
    model: Module,
    loss_fn: Callable[[], float],
    backward_fn: Callable[[], None],
    rng: np.random.Generator,
    samples_per_param: int = 3,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Compare analytic grads against central differences on random entries.

    ``loss_fn`` must recompute the full forward+loss; ``backward_fn`` runs
    one forward+backward populating ``p.grad``.
    """
    model.zero_grad()
    backward_fn()
    for name, p in model.named_parameters():
        flat = p.data.reshape(-1)
        k = min(samples_per_param, flat.size)
        for j in rng.choice(flat.size, size=k, replace=False):
            idx = np.unravel_index(j, p.data.shape)
            num = numeric_param_grad(loss_fn, p, idx, eps)
            ana = p.grad[idx]
            assert abs(num - ana) <= atol + rtol * abs(num), (
                f"grad mismatch at {name}{idx}: numeric={num:.8g} analytic={ana:.8g}"
            )


def check_input_grad(
    forward_loss: Callable[[np.ndarray], float],
    x: np.ndarray,
    analytic_dx: np.ndarray,
    rng: np.random.Generator,
    samples: int = 5,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Check the input gradient returned by a module's backward."""
    flat = x.reshape(-1)
    for j in rng.choice(flat.size, size=min(samples, flat.size), replace=False):
        idx = np.unravel_index(j, x.shape)
        old = x[idx]
        x[idx] = old + eps
        lp = forward_loss(x)
        x[idx] = old - eps
        lm = forward_loss(x)
        x[idx] = old
        num = (lp - lm) / (2 * eps)
        ana = analytic_dx[idx]
        assert abs(num - ana) <= atol + rtol * abs(num), (
            f"input grad mismatch at {idx}: numeric={num:.8g} analytic={ana:.8g}"
        )
