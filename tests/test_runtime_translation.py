"""Differential tests: translation (the two-stream Transformer) on the
concurrent runtimes must be bit-for-bit identical to the sequential
simulator.

This is the stage-graph analogue of ``tests/test_runtime_equivalence.py`` /
``tests/test_runtime_process.py``: the encoder and decoder slice as parallel
chains that merge at cross-attention
(:meth:`repro.models.Transformer.pipeline_graph`), external inputs (src and
tgt token streams) are routed to different workers, tuple payloads carry
masks and the encoder memory across edges, and the tied-embedding /
tied-projection gradient protocols must reproduce the monolithic backward
exactly.  Every case trains the same workload twice (same seed, same data)
and asserts per-step losses compare equal as floats and final weights are
bitwise equal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipeMareConfig
from repro.experiments.workloads import make_translation_workload
from repro.models.transformer import transformer_tiny
from repro.pipeline import partition_model
from repro.pipeline.stage_compute import (
    GraphNode,
    StageGraph,
    build_worker_graph,
)

TIMEOUT = 15.0  # deadlock timeout for every runtime in this file


def small_workload(preset: str = "iwslt", **overrides):
    kw = dict(
        batches_per_epoch=4, batch_size=16, num_microbatches=4, eval_size=8
    )
    kw.update(overrides)
    return make_translation_workload(preset, **kw)


def sample_batches(workload, n: int = 5, batch: int = 16, seed: int = 5):
    """Fixed batches drawn without disturbing the workload's own stream."""
    rng = np.random.default_rng(seed)
    saved = workload.task.rng
    workload.task.rng = rng
    batches = [workload.task.sample_batch(batch) for _ in range(n)]
    workload.task.rng = saved
    return batches


def assert_equivalent(workload, runtime, steps=5, **bundle_kw):
    batches = sample_batches(workload, n=steps)
    b_sim = workload.bundle(runtime="simulator", seed=0, **bundle_kw)
    b_rt = workload.bundle(runtime=runtime, seed=0, **bundle_kw)
    try:
        for i, bt in enumerate(batches):
            l1 = b_sim.executor.train_step((bt.src, bt.tgt_in), bt.tgt_out)
            l2 = b_rt.executor.train_step((bt.src, bt.tgt_in), bt.tgt_out)
            assert l1 == l2, f"step {i}: simulator loss {l1!r} != {runtime} loss {l2!r}"
        b_rt.executor.sync()  # settle the overlapped boundary before comparing
        for p1, p2 in zip(b_sim.model.parameters(), b_rt.model.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)
    finally:
        b_rt.executor.close()


TECHNIQUES = {
    "t1": dict(pipemare=PipeMareConfig.t1_only(anneal_steps=50)),
    "t2": dict(pipemare=PipeMareConfig.t2_only(decay=0.5)),
    "t1t2": dict(pipemare=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5)),
    "t3": dict(pipemare=PipeMareConfig.full(anneal_steps=50, warmup_steps=2, decay=0.5)),
    "recompute": dict(pipemare=PipeMareConfig.t2_only(decay=0.5), recompute_segment=2),
}


@pytest.fixture(scope="module")
def iwslt():
    return small_workload("iwslt")


@pytest.fixture(scope="module")
def wmt():
    return small_workload("wmt")


class TestThreadDifferentialGrid:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    def test_methods_match_bitwise(self, iwslt, method):
        assert_equivalent(iwslt, "async", method=method)

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    def test_pipemare_techniques_match_bitwise(self, iwslt, technique):
        assert_equivalent(iwslt, "async", method="pipemare", **TECHNIQUES[technique])

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("num_stages", [4, None])
    def test_stage_counts_match_bitwise(self, iwslt, num_stages):
        """Coarse partitions merge stream heads onto one worker; the finest
        partition splits every unit — both must stay exact."""
        assert_equivalent(iwslt, "async", method="pipemare", num_stages=num_stages)

    @pytest.mark.timeout(120)
    def test_shared_embeddings_match_bitwise(self, wmt):
        """WMT preset: tied encoder/decoder embedding (one worker, two call
        sites, LIFO cache stack) plus the tied output projection (borrowed
        weights + deferred gradient fold on the last worker)."""
        assert_equivalent(
            wmt, "async", method="pipemare",
            pipemare=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5),
        )


class TestProcessDifferentialGrid:
    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("method", ["gpipe", "pipedream", "pipemare"])
    def test_methods_match_bitwise(self, iwslt, method):
        assert_equivalent(iwslt, "process", method=method)

    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("technique", ["t1t2", "t3", "recompute"])
    def test_pipemare_techniques_match_bitwise(self, iwslt, technique):
        assert_equivalent(iwslt, "process", method="pipemare", **TECHNIQUES[technique])

    @pytest.mark.timeout(180)
    def test_shared_embeddings_match_bitwise(self, wmt):
        """Tied weights across process boundaries: the projection worker
        borrows the embedding stage's version window from the shared mirror
        and ships its deferred contribution home through persistent state."""
        assert_equivalent(
            wmt, "process", method="pipemare",
            pipemare=PipeMareConfig.t1_t2(anneal_steps=50, decay=0.5),
        )

    @pytest.mark.timeout(180)
    def test_dropout_matches_bitwise(self):
        """Counter-based dropout: process workers regenerate the driver's
        masks from (seed, layer, step, microbatch) alone."""
        wl = small_workload("iwslt", dropout=0.1)
        assert_equivalent(wl, "process", method="pipemare")


class TestTrainerIntegration:
    @pytest.mark.timeout(120)
    def test_workload_run_on_async_runtime(self, iwslt):
        """The full trainer loop (train + BLEU eval per epoch) works against
        the concurrent runtime and reports the runtime in the metadata."""
        res = iwslt.run(method="gpipe", epochs=1, seed=0, runtime="async")
        assert res.meta["runtime"] == "async"
        assert len(res.tracker) == 1

    def test_all_runtimes_supported(self, iwslt):
        assert iwslt.supported_runtimes() == (
            "simulator", "async", "process", "socket",
        )

    def test_unknown_runtime_rejected(self, iwslt):
        with pytest.raises(ValueError, match="unknown runtime"):
            iwslt.bundle(runtime="hardware")


class TestStageGraphStructure:
    def test_transformer_graph_routes_two_external_inputs(self):
        model = transformer_tiny(np.random.default_rng(0))
        graph = build_worker_graph(model, partition_model(model, 12))
        assert graph.num_external == 2
        # Both token streams enter at the embedding worker(s); every
        # external index is consumed somewhere.
        consumed = {
            e.ext_index for e in graph.edges if e.src is None
        }
        assert consumed == {0, 1}
        # The loss sits on the last worker (scheduler requirement).
        assert graph.sink.worker == graph.num_workers - 1

    def test_every_edge_flows_forward(self):
        model = transformer_tiny(np.random.default_rng(0), share_embeddings=True)
        graph = build_worker_graph(model, partition_model(model, None))
        for e in graph.cross_edges():
            assert e.src.worker < e.dst.worker

    def test_chain_models_build_one_node_graphs(self):
        from repro.models import MLP
        from repro.pipeline.stage_compute import flatten_graph

        graph = flatten_graph(MLP([4, 4, 2], np.random.default_rng(0)))
        assert [n.name for n in graph.nodes] == ["chain"]
        assert graph.num_external == 1

    def test_graph_validation_rejects_unknown_producer(self):
        from repro.nn import Linear

        lin = Linear(2, 2, np.random.default_rng(0))
        with pytest.raises(ValueError, match="not an earlier node"):
            StageGraph([GraphNode("a", (lin,), ("b",))])

    def test_graph_validation_rejects_dangling_node(self):
        from repro.nn import Linear

        r = np.random.default_rng(0)
        a, b = Linear(2, 2, r), Linear(2, 2, r)
        with pytest.raises(ValueError, match="consumed 0 times"):
            StageGraph([
                GraphNode("a", (a,), ("ext:0",)),
                GraphNode("b", (b,), ("ext:1",)),
            ])

    def test_graph_validation_rejects_duplicate_names(self):
        from repro.nn import Linear

        r = np.random.default_rng(0)
        with pytest.raises(ValueError, match="duplicate"):
            StageGraph([
                GraphNode("a", (Linear(2, 2, r),), ("ext:0",)),
                GraphNode("a", (Linear(2, 2, r),), ("a",)),
            ])
