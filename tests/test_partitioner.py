"""Property tests for the balanced partitioner
(:mod:`repro.pipeline.partition`): contiguity/exhaustiveness, the
bit-for-bit even-split fallback on uniform costs, atom (tied-module)
constraints, imbalance monotonicity vs the even split, and the unified
"too many stages" validation path.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.models import MLP
from repro.models.transformer import transformer_tiny
from repro.pipeline import (
    PartitionPlan,
    Partitioner,
    balanced_bounds,
    build_worker_graph,
    even_bounds,
    num_weight_units,
    partition_model,
    partition_units,
)
from repro.pipeline.partition import _units_of, check_stage_count


def random_costs(rng, n: int) -> list[float]:
    """Skewed positive costs: lognormal with occasional heavy outliers."""
    costs = rng.lognormal(0.0, 1.2, size=n)
    spikes = rng.random(n) < 0.15
    costs[spikes] *= 25.0
    return [float(c) for c in costs]


def imbalance(costs, bounds) -> float:
    sums = [sum(costs[bounds[i]:bounds[i + 1]]) for i in range(len(bounds) - 1)]
    return max(sums) / (sum(sums) / len(sums))


class TestSolverProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_contiguous_and_exhaustive(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 40))
        p = int(rng.integers(1, n + 1))
        bounds = balanced_bounds(random_costs(rng, n), p)
        assert bounds[0] == 0 and bounds[-1] == n
        assert len(bounds) == p + 1
        assert all(a < b for a, b in zip(bounds, bounds[1:])), bounds

    @pytest.mark.parametrize("n,p", [(7, 3), (12, 5), (9, 9), (20, 1), (6, 4)])
    def test_uniform_costs_reproduce_even_split_exactly(self, n, p):
        assert balanced_bounds([1.0] * n, p) == even_bounds(n, p)
        assert balanced_bounds([3.7] * n, p) == even_bounds(n, p)

    @pytest.mark.parametrize("seed", range(8))
    def test_imbalance_never_worse_than_even(self, seed):
        """The solver minimizes the max stage cost and the mean is fixed,
        so max/mean imbalance is monotonically non-increasing vs the even
        split on any cost vector."""
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(4, 40))
        p = int(rng.integers(2, n))
        costs = random_costs(rng, n)
        auto = imbalance(costs, balanced_bounds(costs, p))
        even = imbalance(costs, even_bounds(n, p))
        assert auto <= even + 1e-12

    @pytest.mark.parametrize("seed", range(6))
    def test_optimal_vs_bruteforce(self, seed):
        """On small instances the solver's bottleneck equals the true
        optimum over all contiguous splits."""
        import itertools

        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(3, 9))
        p = int(rng.integers(2, n + 1))
        costs = random_costs(rng, n)

        def max_cost(bounds):
            return max(
                sum(costs[bounds[i]:bounds[i + 1]]) for i in range(len(bounds) - 1)
            )

        best = min(
            max_cost((0, *cuts, n))
            for cuts in itertools.combinations(range(1, n), p - 1)
        )
        got = max_cost(balanced_bounds(costs, p))
        assert got == pytest.approx(best)

    def test_atoms_never_split(self):
        """Units tied into one atom land in one stage, whatever the costs."""
        rng = np.random.default_rng(7)
        for _ in range(6):
            n = int(rng.integers(6, 24))
            costs = random_costs(rng, n)
            # random contiguous atom grouping
            atoms, aid = [], 0
            for i in range(n):
                if i and rng.random() < 0.6:
                    aid += 1
                atoms.append(aid)
            num_blocks = aid + 1
            p = int(rng.integers(1, num_blocks + 1))
            bounds = balanced_bounds(costs, p, atoms=atoms)
            for cut in bounds[1:-1]:
                assert atoms[cut - 1] != atoms[cut], (
                    f"cut at {cut} splits atom {atoms[cut]} (bounds {bounds})"
                )

    def test_more_stages_than_atoms_rejected(self):
        with pytest.raises(ValueError, match="indivisible"):
            balanced_bounds([1.0, 2.0, 3.0, 4.0], 3, atoms=[0, 0, 1, 1])


class TestPartitionPlan:
    def test_even_plan_matches_partition_model_bitwise(self):
        model = MLP([6, 8, 8, 8, 3], np.random.default_rng(0))
        for p in (1, 2, 3, 4):
            legacy = partition_model(model, p)
            plan = Partitioner("even").plan(model, p)
            rebuilt = plan.stages(model)
            assert [s.names for s in legacy] == [s.names for s in rebuilt]
            assert [
                [w is x for w, x in zip(a.params, b.params)]
                for a, b in zip(legacy, rebuilt)
            ]

    def test_plan_pickles_and_reapplies(self):
        model = transformer_tiny(np.random.default_rng(0))
        plan = Partitioner("auto", "sublayer").plan(model, 12)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        replica = transformer_tiny(np.random.default_rng(3))  # other seed, same shapes
        a = plan.stages(model)
        b = clone.stages(replica)
        assert [s.names for s in a] == [s.names for s in b]

    def test_plan_rejects_mismatched_model(self):
        model = MLP([6, 8, 3], np.random.default_rng(0))
        plan = Partitioner("even").plan(model, 2)
        other = MLP([6, 8, 8, 3], np.random.default_rng(0))
        with pytest.raises(ValueError, match="does not match"):
            plan.stages(other)

    def test_imbalance_metric(self):
        plan = PartitionPlan(
            mode="auto", granularity="layer",
            unit_names=("a", "b", "c"), bounds=(0, 1, 3),
            unit_costs=(3.0, 1.0, 1.0),
        )
        # stages cost 3 and 2, mean 2.5 -> 1.2
        assert plan.imbalance() == pytest.approx(3.0 / 2.5)

    def test_profile_mode_requires_sample_inputs(self):
        model = MLP([6, 8, 3], np.random.default_rng(0))
        with pytest.raises(ValueError, match="sample_inputs"):
            Partitioner("profile").plan(model, 2)

    def test_profile_mode_has_no_side_effects(self):
        """Profiling runs on a throwaway copy: the live model's caches,
        parameters and training flag are untouched."""
        model = transformer_tiny(np.random.default_rng(0))
        before = pickle.dumps(model.state_dict())
        assert model.training
        src = np.random.default_rng(1).integers(3, 30, size=(4, 6))
        tgt = np.random.default_rng(2).integers(3, 30, size=(4, 5))
        Partitioner("profile", "sublayer").plan(model, 8, sample_inputs=(src, tgt))
        assert model.training
        assert pickle.dumps(model.state_dict()) == before

    def test_auto_balances_skewed_mlp_better_than_even(self):
        """A deliberately skewed MLP (two huge layers among tiny ones):
        cost-aware splitting must beat even-by-unit-count."""
        model = MLP([16, 256, 16, 16, 16, 256, 10], np.random.default_rng(0))
        even = Partitioner("even").plan(model, 3)
        auto = Partitioner("auto").plan(model, 3)
        # score the even bounds under the same cost estimates
        even_imb = imbalance(list(auto.unit_costs), even.bounds)
        assert auto.imbalance() < even_imb
        assert auto.bounds != even.bounds


class TestUnifiedStageCountError:
    """One ValueError wording — model name, finest granularity, requested
    count — from every entry point (satellite: the chain path used to say
    'cannot make N stages from M weight units' while graph models failed
    elsewhere with different words)."""

    def test_chain_entry_point(self):
        model = MLP([6, 8, 3], np.random.default_rng(0))
        units = num_weight_units(model)
        with pytest.raises(ValueError, match=rf"cannot split MLP into {units + 1} pipeline stages"):
            partition_model(model, units + 1)

    def test_graph_model_entry_point(self):
        model = transformer_tiny(np.random.default_rng(0))
        units = num_weight_units(model)
        with pytest.raises(ValueError, match="cannot split Transformer into 99 pipeline stages"):
            partition_model(model, 99)
        with pytest.raises(ValueError, match="finest granularity is 45 weight units"):
            Partitioner("auto", "sublayer").plan(model, units + 5)

    def test_partition_units_names_the_model(self):
        model = MLP([6, 8, 3], np.random.default_rng(0))
        with pytest.raises(ValueError, match="cannot split MyNet into"):
            partition_units(_units_of(model), 99, model_name="MyNet")

    def test_message_carries_granularity(self):
        with pytest.raises(ValueError, match="granularity='sublayer'"):
            check_stage_count(9, 4, "Tiny", "sublayer")

    def test_non_positive_stage_count(self):
        with pytest.raises(ValueError, match=">= 1"):
            check_stage_count(0, 4)


class TestTiedConstraintsSurviveAnyPartition:
    @pytest.mark.parametrize("partition", ["even", "auto"])
    @pytest.mark.parametrize("granularity", ["layer", "sublayer"])
    def test_shared_embedding_transformer_builds_at_every_stage_count(
        self, partition, granularity
    ):
        """The tied encoder/decoder embedding must land on one worker for
        every plan the partitioner can produce — build_worker_graph raises
        if a plan ever split the tie."""
        model = transformer_tiny(np.random.default_rng(0), share_embeddings=True)
        units = num_weight_units(model)
        for p in [1, 2, 3, units // 2, units]:
            plan = Partitioner(partition, granularity).plan(model, p)
            graph = build_worker_graph(
                model, plan.stages(model), granularity=granularity
            )
            assert graph.num_workers >= 1
