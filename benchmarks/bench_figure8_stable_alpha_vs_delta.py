"""Figure 8 — largest stable step size vs discrepancy sensitivity Δ, with
and without the T2 correction (τ_f=40, τ_b=10; the paper's exact setting).
T2 consistently enlarges the stable range for Δ ≥ 0 and may not for Δ < 0."""

import numpy as np

from repro.theory import (
    char_poly_discrepancy,
    char_poly_t2,
    max_stable_alpha,
    t2_gamma,
)

from conftest import print_banner, print_series


def test_figure8_stable_alpha_vs_delta(run_once):
    tau_f, tau_b, lam = 40, 10, 1.0
    gamma = t2_gamma(tau_f, tau_b)
    deltas = np.array([-100.0, -30.0, -5.0, 0.5, 5.0, 30.0, 100.0])

    def build():
        orig, corr = [], []
        for d in deltas:
            orig.append(max_stable_alpha(
                lambda a: char_poly_discrepancy(tau_f, tau_b, a, lam, d)))
            corr.append(max_stable_alpha(
                lambda a: char_poly_t2(tau_f, tau_b, a, lam, d, gamma)))
        return np.array(orig), np.array(corr)

    orig, corr = run_once(build)
    print_banner("Figure 8 — max stable alpha vs delta (tau_f=40, tau_b=10)")
    print_series("original", deltas, orig, ".5f")
    print_series("T2 corrected", deltas, corr, ".5f")

    pos = deltas > 0
    assert (corr[pos] > orig[pos]).all()  # always better for Δ>0 (paper's claim)
    # for Δ<0 the paper only observes that T2 is "not necessarily" better;
    # both curves must at least be finite and positive there
    assert (orig[deltas < 0] > 0).all() and (corr[deltas < 0] > 0).all()
    # threshold shrinks as |Δ| grows on the positive side
    assert orig[pos][-1] < orig[pos][0]
