"""Table 1 — delay / throughput / weight-memory characterisation of
PipeDream, GPipe, PipeMare, verified both analytically and against the
executor's realised delays."""

import numpy as np

from repro.pipeline import DelayProfile, Method, costmodel

from conftest import print_banner


def test_table1_characterization(run_once):
    p, n = 16, 4

    def build():
        rows = []
        for method in (Method.PIPEDREAM, Method.GPIPE, Method.PIPEMARE):
            prof = DelayProfile(p, n, method)
            rows.append(
                dict(
                    method=method.value,
                    tau_fwd_stage1=prof.tau_fwd(0),
                    tau_bkwd_stage1=prof.tau_bkwd(0),
                    throughput=costmodel.normalized_throughput(method, p, n),
                    weight_memory=costmodel.weight_memory(method, 1, p, n),
                )
            )
        return rows

    rows = run_once(build)
    print_banner(f"Table 1 (P={p}, N={n}; stage i=1)")
    print(f"{'method':<10} {'tau_fwd':>8} {'tau_bkwd':>9} {'throughput':>11} {'weights':>8}")
    for r in rows:
        print(
            f"{r['method']:<10} {r['tau_fwd_stage1']:>8.3f} {r['tau_bkwd_stage1']:>9.3f} "
            f"{r['throughput']:>11.3f} {r['weight_memory']:>8.2f}"
        )

    pd, gp, pm = rows
    # PipeDream: tau_fwd = tau_bkwd = (2(P-1)+1)/N; throughput 1; W(1+P/N)
    assert pd["tau_fwd_stage1"] == pd["tau_bkwd_stage1"] == (2 * (p - 1) + 1) / n
    assert pd["throughput"] == 1.0 and pd["weight_memory"] == 1 + p / n
    # GPipe: zero delay, N/(N+P-1) throughput, one weight copy
    assert gp["tau_fwd_stage1"] == gp["tau_bkwd_stage1"] == 0.0
    assert gp["throughput"] == n / (n + p - 1) and gp["weight_memory"] == 1.0
    # PipeMare: PipeDream's tau_fwd, zero tau_bkwd, full throughput, W
    assert pm["tau_fwd_stage1"] == pd["tau_fwd_stage1"]
    assert pm["tau_bkwd_stage1"] == 0.0
    assert pm["throughput"] == 1.0 and pm["weight_memory"] == 1.0

    # realised average delay equals the analytic one
    prof = DelayProfile(p, n, Method.PIPEMARE)
    lags = [t - prof.fwd_version(0, t, j) for t in range(50, 90) for j in range(n)]
    assert np.mean(lags) == float(pd["tau_fwd_stage1"])
