"""Figure 16 — eigenvalue analysis of the recompute quadratic model
(Δ=10, Φ=−5, τ_f=10, τ_r=4, τ_b=1, λ=1): discrepancy inflates the largest
eigenvalue; T2-for-recompute (D=0.1) pulls it back toward the
no-discrepancy case."""

import numpy as np

from repro.theory import (
    char_poly_delayed_sgd,
    char_poly_recompute,
    spectral_radius,
)

from conftest import print_banner, print_series


def test_figure16_recompute_eigenvalues(run_once):
    tau_f, tau_r, tau_b, lam = 10, 4, 1, 1.0
    delta, phi = 10.0, -5.0
    d_corr = 0.1
    gamma = d_corr ** (1.0 / (tau_f - tau_b))
    alphas = np.geomspace(1e-3, 1.0, 30)

    def radius(delta_, phi_, gamma_):
        return np.array([
            spectral_radius(
                char_poly_recompute(tau_f, tau_r, tau_b, a, lam, delta_, phi_, gamma_)
            )
            for a in alphas
        ])

    def build():
        return {
            "discrepancy_no_corr": radius(delta, phi, 0.0),
            "no_discrepancy": np.array([
                spectral_radius(char_poly_delayed_sgd(tau_f, a, lam)) for a in alphas
            ]),
            "t2_corrected": radius(delta, phi, gamma),
        }

    curves = run_once(build)
    print_banner("Figure 16 — largest eigenvalue vs alpha (recompute model)")
    idx = range(0, 30, 5)
    for name, ys in curves.items():
        print_series(name, [f"{alphas[i]:.4f}" for i in idx], [ys[i] for i in idx], ".4f")

    band = [i for i, a in enumerate(alphas) if 0.01 <= a <= 0.1]
    raw = curves["discrepancy_no_corr"]
    corr = curves["t2_corrected"]
    none = curves["no_discrepancy"]
    # correction reduces the radius in the interesting band, toward Δ=Φ=0
    assert np.mean(raw[band] - corr[band]) > 0.0
    assert np.mean(np.abs(corr[band] - none[band])) < np.mean(np.abs(raw[band] - none[band]))
