"""Figure 13 — sensitivity to the T2 decay D: a well-chosen D (0.5 for the
image task, matching the paper's CIFAR grid optimum) performs best, while
too-small D (over-aggressive extrapolation) degrades below T1-only."""

from repro.experiments import make_image_workload
from repro.experiments.sensitivity import sweep_decay

from conftest import print_banner


def test_figure13_decay_sensitivity(run_once):
    workload = make_image_workload("cifar")
    grid = [0.0, 0.05, 0.5, 0.9]  # 0.0 = no correction (T1 only)
    results = run_once(sweep_decay, workload, grid, epochs=16)
    print_banner("Figure 13 — accuracy vs T2 decay D")
    for d, r in results.items():
        print(f"D={d:>4}: best={r.best_metric:.1f} diverged={r.diverged}")

    best = {d: r.best_metric for d, r in results.items()}
    # the tuned D=0.5 is at least as good as the aggressive D=0.05
    assert best[0.5] >= best[0.05] - 1.0
    # and roughly on par with no-correction on this shallow model (the
    # paper's CIFAR Figure 13 shows D<=0.5 converging, bad D hurting)
    assert best[0.5] > 60.0
