"""Table 2 — end-to-end comparison of PipeDream / GPipe / PipeMare on the
image-classification and translation stand-ins.

Shape expectations from the paper: the async methods get throughput 1.0 vs
GPipe's 0.3; PipeDream pays a large weight+optimizer memory multiplier;
PipeMare reaches the shared target with time-to-accuracy speedup over GPipe;
on the Transformer, PipeDream fails outright (best BLEU ≈ 0)."""

import math

from repro.experiments import make_image_workload, make_translation_workload
from repro.experiments.end_to_end import run_end_to_end

from conftest import print_banner


def test_table2_image(run_once):
    workload = make_image_workload("cifar")
    rows, _ = run_once(
        run_end_to_end, workload, epochs=16,
        methods=("pipedream", "gpipe", "pipemare"),
    )
    print_banner("Table 2 — CIFAR10 stand-in (ResNet, SGD+momentum)")
    for r in rows:
        print(r.format())

    by = {r.method: r for r in rows}
    assert by["gpipe"].throughput < by["pipemare"].throughput == 1.0
    assert by["pipedream"].memory_multiplier > by["pipemare"].memory_multiplier > 1.0
    assert by["gpipe"].memory_multiplier == 1.0
    # GPipe attains the best statistical quality; PipeMare stays within a
    # few points and wins on time-to-target whenever it reaches the target.
    assert by["gpipe"].best_metric >= by["pipemare"].best_metric - 1e-9
    if math.isfinite(by["pipemare"].time_to_target):
        assert by["pipemare"].speedup_vs_gpipe > 1.0


def test_table2_translation(run_once):
    workload = make_translation_workload("iwslt")
    # Finest granularity (one weight unit per stage), the paper's 93-stage
    # regime: this is where PipeDream's delayed synchronous updates break
    # the Transformer while PipeMare's T1+T2+T3 keep it learning.
    stages = workload.max_stages()
    rows, _ = run_once(
        run_end_to_end, workload, epochs=24, warmup_epochs=4,
        methods=("pipedream", "gpipe", "pipemare"), num_stages=stages,
    )
    print_banner(f"Table 2 — IWSLT14 stand-in (Transformer, AdamW), P={stages}")
    for r in rows:
        print(r.format())

    by = {r.method: r for r in rows}
    # the paper's headline failure: PipeDream cannot train the Transformer
    assert by["pipedream"].best_metric < 5.0
    assert math.isinf(by["pipedream"].time_to_target)
    assert by["gpipe"].best_metric > 30.0
    assert by["pipemare"].best_metric > 10.0
    # memory: PipeMare 1.25x (Adam+T2), PipeDream > 1.3x
    assert abs(by["pipemare"].memory_multiplier - 1.25) < 1e-9
    assert by["pipedream"].memory_multiplier > 1.3
