"""Figure 19 — Hogwild!-style stochastic delays (Appendix E): T1 improves
final quality over plain Hogwild! training, approaching the synchronous
reference."""

from repro.experiments import make_image_workload
from repro.experiments.hogwild_study import run_hogwild_image

from conftest import curve, print_banner, print_series


def test_figure19_hogwild(run_once):
    workload = make_image_workload("cifar")

    def build():
        sync = workload.run(method="gpipe", epochs=12, seed=0)
        hog = run_hogwild_image(workload, epochs=12, use_t1=False, seed=0)
        hog_t1 = run_hogwild_image(workload, epochs=12, use_t1=True, seed=0)
        return {"sync": sync, "hogwild": hog, "hogwild+t1": hog_t1}

    results = run_once(build)
    print_banner("Figure 19 — Hogwild! asynchrony on the image task")
    for name, r in results.items():
        ys = curve(r)
        print_series(name, range(len(ys)), ys, ".1f")
        print(f"   best={r.best_metric:.1f} diverged={r.diverged}")

    assert results["sync"].best_metric > 95.0
    # T1 must not hurt, and typically helps, under stochastic delays
    assert results["hogwild+t1"].best_metric >= results["hogwild"].best_metric - 3.0
    assert not results["hogwild+t1"].diverged
