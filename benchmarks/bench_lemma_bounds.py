"""Lemmas 1–3 — closed-form stability thresholds vs numerical root-finding
across the delay range used in the paper's experiments."""

import numpy as np

from repro.theory import (
    char_poly_delayed_sgd,
    char_poly_momentum,
    lemma1_alpha_max,
    lemma2_alpha_bound,
    lemma3_alpha_bound,
    max_stable_alpha,
    char_poly_discrepancy,
)

from conftest import print_banner, print_series


def test_lemma1_closed_form(run_once):
    taus = [1, 2, 5, 10, 20, 40]

    def build():
        numeric = [max_stable_alpha(lambda a: char_poly_delayed_sgd(t, a, 1.0)) for t in taus]
        closed = [lemma1_alpha_max(t, 1.0) for t in taus]
        return numeric, closed

    numeric, closed = run_once(build)
    print_banner("Lemma 1 — max stable alpha (lambda=1)")
    print_series("numeric", taus, numeric, ".6f")
    print_series("closed form", taus, closed, ".6f")
    for n, c in zip(numeric, closed):
        assert abs(n - c) / c < 1e-3


def test_lemma2_bound_envelope():
    print_banner("Lemma 2 — instability below min(2/(Δ·Δτ), lemma1)")
    for delta in (0.5, 2.0, 10.0):
        bound = lemma2_alpha_bound(10, 6, 1.0, delta)
        numeric = max_stable_alpha(lambda a: char_poly_discrepancy(10, 6, a, 1.0, delta))
        print(f"delta={delta:>5}: numeric threshold={numeric:.5f} lemma2 bound={bound:.5f}")
        assert numeric <= bound * (1 + 1e-6)


def test_lemma3_momentum_bound():
    print_banner("Lemma 3 — momentum cannot beat the O(1/tau) threshold")
    tau = 10
    bound = lemma3_alpha_bound(tau, 1.0)
    for beta in (0.3, 0.6, 0.9):
        numeric = max_stable_alpha(lambda a: char_poly_momentum(tau, a, 1.0, beta))
        print(f"beta={beta}: numeric={numeric:.5f} (lemma3 bound {bound:.5f})")
        assert numeric <= bound * (1 + 1e-6)
