"""Figure 18 — PipeMare Recompute on the translation task.  The paper's key
observation: recompute without discrepancy correction destabilises the
Transformer, while with T2 every checkpoint count matches no-recompute."""

from repro.core import PipeMareConfig
from repro.experiments import make_translation_workload
from repro.experiments.recompute_training import run_recompute_study

from conftest import curve, print_banner, print_series


def test_figure18_recompute_translation(run_once):
    workload = make_translation_workload("iwslt")
    cfg = workload.default_config(warmup_epochs=4)
    results = run_once(
        run_recompute_study, workload, checkpoint_grid=[None, 2, 4],
        epochs=20, config=cfg,
    )
    print_banner("Figure 18 — recompute checkpoints, translation (T1+T2+T3)")
    for name, r in results.items():
        ys = curve(r)
        print_series(name, range(len(ys)), ys, ".1f")
        print(f"   best={r.best_metric:.1f} diverged={r.diverged}")

    base = results["no_recompute"].best_metric
    assert base > 10.0
    for name, r in results.items():
        assert not r.diverged
        # with correction, recompute stays in the same quality band
        assert r.best_metric > base * 0.4
