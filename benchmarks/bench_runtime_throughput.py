#!/usr/bin/env python
"""Throughput benchmark: thread and process pipeline runtimes vs. the
sequential simulator.

Runs two training workloads on all three pipeline backends — a 4-stage MLP
(N=8 microbatches, stage compute dominated by BLAS matmuls, no sleeps
anywhere) and the two-stream translation Transformer (encoder/decoder
sliced through its stage graph, thread vs process microbatches/sec) — and
reports:

* wall-clock microbatches/sec for each backend and the concurrent/simulator
  ratios — these should exceed 2× on a host with >= num_stages cores, where
  the workers' kernels genuinely overlap (threads overlap only where NumPy
  releases the GIL; processes sidestep the GIL entirely);
* the measured bubble fraction of each concurrent execution (worker idle
  time from the runtime's own busy/wall accounting);
* the process backend's transport overhead — the share of worker active
  time (compute + copies) spent moving activations/gradients through the
  shared-memory rings, from the runtime's transfer accounting;
* the schedule-limited speedup — total compute slots / critical-path slots
  of the interleaved 1F1B schedule actually executed, i.e. the wall-clock
  ratio an unconstrained-core host converges to;
* a loss-equivalence check (all three backends must match bit for bit).

On a single-core host (CI smoke) the wall-clock ratios degrade to ~1× by
physics — there is no second core to overlap on — so the report prints the
detected core count next to the numbers.

Usage:  PYTHONPATH=src python benchmarks/bench_runtime_throughput.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

# Pin BLAS to one thread per kernel *before* numpy loads: per-stage compute
# must be single-threaded so the comparison measures pipeline overlap, not
# BLAS-internal parallelism.
for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import numpy as np  # noqa: E402

from repro.models import MLP  # noqa: E402
from repro.nn import CrossEntropyLoss  # noqa: E402
from repro.optim import SGD  # noqa: E402
from repro.pipeline import (  # noqa: E402
    AsyncPipelineRuntime,
    Method,
    PipelineExecutor,
    partition_model,
    stage_programs,
)
from repro.pipeline.executor import param_groups_from_stages  # noqa: E402


def build_backend(cls, *, dims, num_stages, num_microbatches, method, seed, **kw):
    model = MLP(dims, np.random.default_rng(seed))
    stages = partition_model(model, num_stages)
    opt = SGD(param_groups_from_stages(stages), lr=0.01, momentum=0.9)
    backend = cls(
        model, CrossEntropyLoss(), opt, stages, num_microbatches, method, **kw
    )
    return model, backend


def schedule_speedup(method: str, num_stages: int, num_microbatches: int) -> float:
    """Total compute slots / critical-path slots of the executed schedule."""
    programs = stage_programs(method, num_stages, num_microbatches)
    busy = sum(len(ops) for ops in programs)
    # Critical path: replay the dataflow, assigning each op the earliest
    # slot after its stage-predecessor and its dataflow dependency.
    finish: dict[tuple[str, int, int], int] = {}
    for _ in range(num_stages):  # relax until fixed point (<= P sweeps)
        for s, ops in enumerate(programs):
            prev_end = 0
            for op, j in ops:
                dep = ("F", s - 1, j) if (op == "F" and s > 0) else (
                    ("B", s + 1, j) if (op == "B" and s < num_stages - 1) else None
                )
                start = max(prev_end, finish.get(dep, 0) if dep else 0)
                finish[(op, s, j)] = start + 1
                prev_end = start + 1
    span = max(finish.values())
    return busy / num_stages / span * num_stages


def measure(backend, x, y, steps: int, warmup: int) -> tuple[float, list[float]]:
    losses = []
    for _ in range(warmup):
        backend.train_step(x, y)
    t0 = time.perf_counter()
    for _ in range(steps):
        losses.append(backend.train_step(x, y))
    return time.perf_counter() - t0, losses


def measure_translation(quick: bool, method: str) -> bool:
    """Translation rows: the two-stream Transformer on all three backends.
    Returns the bitwise loss-equivalence verdict."""
    from repro.experiments.workloads import make_translation_workload

    batch = 16 if quick else 64
    n = 4 if quick else 8
    steps = 2 if quick else 8
    warmup = 1
    workload = make_translation_workload(
        "iwslt", batch_size=batch, num_microbatches=n, batches_per_epoch=2,
        eval_size=4,
    )
    rng = np.random.default_rng(0)
    saved = workload.task.rng
    workload.task.rng = rng
    batches = [workload.task.sample_batch(batch) for _ in range(steps + warmup)]
    workload.task.rng = saved

    print(f"\ntranslation throughput: two-stream Transformer "
          f"stages={workload.default_stages} N={n} batch={batch} steps={steps}")
    results = {}
    for runtime in ("simulator", "async", "process"):
        bundle = workload.bundle(method=method, runtime=runtime, seed=0)
        ex = bundle.executor
        try:
            losses = []
            for bt in batches[:warmup]:
                ex.train_step((bt.src, bt.tgt_in), bt.tgt_out)
            t0 = time.perf_counter()
            for bt in batches[warmup:]:
                losses.append(ex.train_step((bt.src, bt.tgt_in), bt.tgt_out))
            wall = time.perf_counter() - t0
            stats = getattr(ex, "stats", None)
            results[runtime] = dict(
                wall=wall, losses=losses,
                workers=getattr(ex, "num_workers", None),
                bubble=stats.bubble_fraction() if stats else None,
                transport=stats.transport_fraction() if stats else None,
            )
        finally:
            if hasattr(ex, "close"):
                ex.close()
    micro = steps * n
    sim_tput = micro / results["simulator"]["wall"]
    for runtime, r in results.items():
        tput = micro / r["wall"]
        extra = ""
        if r["workers"] is not None:
            extra = (f"  workers={r['workers']}  speedup={tput / sim_tput:.2f}x  "
                     f"bubble={r['bubble']:.3f}  transport={r['transport']:.1%} of active")
        print(f"  {runtime:<10s}: {tput:9.1f} microbatches/sec  ({r['wall']:.3f}s){extra}")
    equivalent = all(
        r["losses"] == results["simulator"]["losses"] for r in results.values()
    )
    print(f"  loss equivalence (bitwise)  : {'OK' if equivalent else 'MISMATCH'}"
          f"  (simulator == thread == process)")
    return equivalent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: tiny sizes")
    parser.add_argument("--stages", type=int, default=4)
    parser.add_argument("--microbatches", type=int, default=8)
    parser.add_argument("--width", type=int, default=None, help="hidden width")
    parser.add_argument("--batch", type=int, default=None, help="minibatch size")
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--method", choices=["gpipe", "pipedream", "pipemare"], default="pipemare"
    )
    parser.add_argument(
        "--skip-translation", action="store_true",
        help="MLP rows only (skip the two-stream Transformer section)",
    )
    args = parser.parse_args(argv)

    p, n = args.stages, args.microbatches
    width = args.width or (64 if args.quick else 512)
    batch = args.batch or (n * (8 if args.quick else 48))
    steps = args.steps or (2 if args.quick else 10)
    warmup = 1 if args.quick else 2
    dims = [width] * p + [10]  # p Linear layers -> p single-layer stages

    rng = np.random.default_rng(0)
    x = rng.normal(size=(batch, width))
    y = rng.integers(0, 10, size=batch)

    print(f"runtime throughput: method={args.method} P={p} N={n} "
          f"width={width} batch={batch} steps={steps} "
          f"cores={os.cpu_count()} (BLAS pinned to 1 thread)")

    _, sim = build_backend(
        PipelineExecutor, dims=dims, num_stages=p, num_microbatches=n,
        method=args.method, seed=42,
    )
    sim_wall, sim_losses = measure(sim, x, y, steps, warmup)

    concurrent = {}
    for backend in ("thread", "process"):
        _, rt = build_backend(
            AsyncPipelineRuntime, dims=dims, num_stages=p, num_microbatches=n,
            method=args.method, seed=42, backend=backend,
        )
        try:
            wall, losses = measure(rt, x, y, steps, warmup)
            concurrent[backend] = dict(
                wall=wall,
                losses=losses,
                bubble=rt.stats.bubble_fraction(),
                transport=rt.stats.transport_fraction(),
                workers=rt.num_workers,
            )
        finally:
            rt.close()

    equivalent = all(sim_losses == c["losses"] for c in concurrent.values())
    micro = steps * n
    sim_tput = micro / sim_wall
    workers = concurrent["thread"]["workers"]
    sched = schedule_speedup(
        "gpipe" if args.method == "gpipe" else args.method, workers, n
    )
    gpipe_bubble = (p - 1) / (n + p - 1)

    print(f"  simulator : {sim_tput:9.1f} microbatches/sec  ({sim_wall:.3f}s)")
    for backend, c in concurrent.items():
        tput = micro / c["wall"]
        print(f"  {backend:<10s}: {tput:9.1f} microbatches/sec  "
              f"({c['wall']:.3f}s)  workers={c['workers']}  "
              f"speedup={tput / sim_tput:.2f}x  bubble={c['bubble']:.3f}  "
              f"transport={c['transport']:.1%} of active")
    print(f"  schedule-limited speedup    : {sched:.2f}x  "
          f"(wall-clock ceiling with >= {workers} cores)")
    print(f"  gpipe closed-form bubble    : {gpipe_bubble:.3f}  ((P-1)/(N+P-1))")
    print(f"  loss equivalence (bitwise)  : {'OK' if equivalent else 'MISMATCH'}"
          f"  (simulator == thread == process)")

    translation_ok = True
    if not args.skip_translation:
        translation_ok = measure_translation(args.quick, args.method)

    if not equivalent or not translation_ok:
        print("ERROR: backends diverged", file=sys.stderr)
        return 1
    if sched < 2.0 and p >= 4 and n >= 8:
        print("ERROR: schedule speedup below 2x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
