#!/usr/bin/env python
"""Throughput benchmark: thread and process pipeline runtimes vs. the
sequential simulator, with the overlapped optimizer boundary on and off.

Runs two training workloads on all three pipeline backends — a 4-stage MLP
(N=8 microbatches, stage compute dominated by BLAS matmuls, no sleeps
anywhere) and the two-stream translation Transformer (encoder/decoder
sliced through its stage graph) — and reports:

* wall-clock microbatches/sec for each backend and the concurrent/simulator
  ratios — these should exceed 2× on a host with >= num_stages cores, where
  the workers' kernels genuinely overlap (threads overlap only where NumPy
  releases the GIL; processes sidestep the GIL entirely);
* the measured bubble fraction of each concurrent execution (worker idle
  time from the runtime's own busy/wall accounting);
* the process backend's transport overhead — the share of worker active
  time (compute + copies) spent moving activations/gradients through the
  shared-memory rings, from the runtime's transfer accounting;
* the measured **boundary stall** — the share of worker-time lost to the
  minibatch boundary (non-overlapped driver fold/step/publish plus
  version-gate waits).  Barrier mode pays this every step; the overlapped
  boundary (``overlap=on``, the runtime default) should drive it to ~0 and
  never lose throughput;
* the schedule-limited speedup — total compute slots / critical-path slots
  of the interleaved 1F1B schedule actually executed, i.e. the wall-clock
  ratio an unconstrained-core host converges to;
* the **wave fusion** comparison: every concurrent MLP row runs twice,
  with the compiled fused command blocks (``workload="mlp"``, the runtime
  default) and with per-wave commands (``workload="mlp-nofuse"``, the
  differential reference), reporting ``commands_per_step`` for both — the
  scheduler hand-off count fusion exists to collapse — so the committed
  trajectory records both the hand-off reduction and its throughput
  effect (``check_perf_regression.py`` gates fused-vs-unfused);
* a loss-equivalence check (every row must match the simulator bit for
  bit, overlap on or off);
* the **partition balance** section: even vs auto (cost-balanced)
  partitioning on a deliberately skewed MLP, reporting predicted and
  measured max/mean stage-time imbalance per mode — ``auto`` must not be
  worse than ``even``, and both rows land in the JSON trajectory;
* the **hybrid data × pipeline** section: the thread runtime at
  ``num_replicas`` R = 1 (the single-pipeline baseline) and R = 2,
  per-replica shard size held constant (weak scaling), reporting aggregate
  samples/sec vs R — every row bit-for-bit checked against the sequential
  simulator at the same replica count.

On a single-core host (CI smoke) the wall-clock ratios degrade to ~1× by
physics — there is no second core to overlap on — so the report prints the
detected core count next to the numbers.

``--json PATH`` additionally emits every row as machine-readable records
(the repo keeps a committed snapshot in ``BENCH_runtime.json``; CI uploads
a ``--quick`` run as a non-gating artifact to track the trajectory).

Usage:  PYTHONPATH=src python benchmarks/bench_runtime_throughput.py
            [--quick] [--json PATH] [--overlap {on,off,both}]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

# Pin BLAS to one thread per kernel *before* numpy loads: per-stage compute
# must be single-threaded so the comparison measures pipeline overlap, not
# BLAS-internal parallelism.
for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import numpy as np  # noqa: E402

from repro.models import MLP  # noqa: E402
from repro.nn import CrossEntropyLoss  # noqa: E402
from repro.optim import SGD  # noqa: E402
from repro.pipeline import (  # noqa: E402
    AsyncPipelineRuntime,
    Method,
    Partitioner,
    PipelineExecutor,
    partition_model,
    stage_programs,
)
from repro.pipeline.executor import param_groups_from_stages  # noqa: E402


def build_backend(cls, *, dims, num_stages, num_microbatches, method, seed, **kw):
    model = MLP(dims, np.random.default_rng(seed))
    stages = partition_model(model, num_stages)
    opt = SGD(param_groups_from_stages(stages), lr=0.01, momentum=0.9)
    backend = cls(
        model, CrossEntropyLoss(), opt, stages, num_microbatches, method, **kw
    )
    return model, backend


_ROW_DEFAULTS = dict(
    partition=None, speedup_vs_simulator=None, bubble_fraction=None,
    transport_fraction=None, boundary_stall_fraction=None,
    imbalance_predicted=None, imbalance_measured=None,
    replicas=1, samples_per_sec=None, commands_per_step=None,
)


def make_row(**fields) -> dict:
    """Every JSON row carries the full unified key set (missing metrics are
    explicit nulls, ``workers`` is always an integer) so consumers — and
    ``bench_schema.json`` — see exactly one row shape."""
    row = dict(_ROW_DEFAULTS)
    row.update(fields)
    return row


def _schema_errors(value, schema, path, errors):
    """Minimal JSON-Schema interpreter (type / enum / minimum / maximum /
    required / properties / items) — enough for bench_schema.json without
    pulling in a validator dependency."""
    types = schema.get("type")
    if types is not None:
        if isinstance(types, str):
            types = [types]
        checks = {
            "null": lambda v: v is None,
            "boolean": lambda v: isinstance(v, bool),
            "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
            "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
            "string": lambda v: isinstance(v, str),
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
        }
        if not any(checks[t](value) for t in types):
            errors.append(f"{path}: {value!r} is not of type {'/'.join(types)}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value!r} below minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value!r} above maximum {schema['maximum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _schema_errors(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _schema_errors(item, schema["items"], f"{path}[{i}]", errors)


def validate_payload(payload: dict) -> list[str]:
    """Validate the --json payload against the checked-in schema; returns
    human-readable mismatches (empty list = valid)."""
    schema_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "bench_schema.json"
    )
    with open(schema_path) as fh:
        schema = json.load(fh)
    errors: list[str] = []
    _schema_errors(payload, schema, "$", errors)
    return errors


def schedule_speedup(method: str, num_stages: int, num_microbatches: int) -> float:
    """Total compute slots / critical-path slots of the executed schedule."""
    programs = stage_programs(method, num_stages, num_microbatches)
    busy = sum(len(ops) for ops in programs)
    # Critical path: replay the dataflow, assigning each op the earliest
    # slot after its stage-predecessor and its dataflow dependency.
    finish: dict[tuple[str, int, int], int] = {}
    for _ in range(num_stages):  # relax until fixed point (<= P sweeps)
        for s, ops in enumerate(programs):
            prev_end = 0
            for op, j in ops:
                dep = ("F", s - 1, j) if (op == "F" and s > 0) else (
                    ("B", s + 1, j) if (op == "B" and s < num_stages - 1) else None
                )
                start = max(prev_end, finish.get(dep, 0) if dep else 0)
                finish[(op, s, j)] = start + 1
                prev_end = start + 1
    span = max(finish.values())
    return busy / num_stages / span * num_stages


def measure(backend, x, y, steps: int, warmup: int) -> tuple[float, list[float]]:
    """Timed steps; the final sync() (a no-op in barrier mode) charges the
    overlapped runtime for its last pending boundary, so modes compare
    fairly."""
    losses = []
    for _ in range(warmup):
        backend.train_step(x, y)
    if hasattr(backend, "sync"):
        backend.sync()
    t0 = time.perf_counter()
    for _ in range(steps):
        losses.append(backend.train_step(x, y))
    if hasattr(backend, "sync"):
        backend.sync()
    return time.perf_counter() - t0, losses


def concurrent_variants(overlap: str):
    """(backend, overlap-flag) grid for the requested --overlap mode."""
    flags = {"on": [True], "off": [False], "both": [False, True]}[overlap]
    return [(b, f) for b in ("thread", "process") for f in flags]


def row_label(backend: str, overlap_flag: bool | None) -> str:
    if overlap_flag is None:
        return backend
    return f"{backend}/{'overlap' if overlap_flag else 'barrier'}"


def print_row(label, tput, wall, extra=""):
    print(f"  {label:<16s}: {tput:9.1f} microbatches/sec  ({wall:.3f}s){extra}")


def measure_translation(quick: bool, method: str, overlap: str, rows: list) -> bool:
    """Translation rows: the two-stream Transformer on all three backends.
    Returns the bitwise loss-equivalence verdict."""
    from repro.experiments.workloads import make_translation_workload

    batch = 16 if quick else 64
    n = 4 if quick else 8
    steps = 2 if quick else 8
    warmup = 1
    workload = make_translation_workload(
        "iwslt", batch_size=batch, num_microbatches=n, batches_per_epoch=2,
        eval_size=4,
    )
    rng = np.random.default_rng(0)
    saved = workload.task.rng
    workload.task.rng = rng
    batches = [workload.task.sample_batch(batch) for _ in range(steps + warmup)]
    workload.task.rng = saved

    print(f"\ntranslation throughput: two-stream Transformer "
          f"stages={workload.default_stages} N={n} batch={batch} steps={steps}")
    variants = [("simulator", None)] + concurrent_variants(overlap)
    results = {}
    for runtime, overlap_flag in variants:
        # The workload factory names the thread backend "async".
        bundle = workload.bundle(
            method=method, seed=0, overlap_boundary=overlap_flag,
            runtime={"thread": "async"}.get(runtime, runtime),
        )
        ex = bundle.executor
        try:
            losses = []
            for bt in batches[:warmup]:
                ex.train_step((bt.src, bt.tgt_in), bt.tgt_out)
            if hasattr(ex, "sync"):
                ex.sync()
            t0 = time.perf_counter()
            for bt in batches[warmup:]:
                losses.append(ex.train_step((bt.src, bt.tgt_in), bt.tgt_out))
            if hasattr(ex, "sync"):
                ex.sync()
            wall = time.perf_counter() - t0
            stats = getattr(ex, "stats", None)
            results[row_label(runtime, overlap_flag)] = dict(
                backend=runtime, overlap=overlap_flag,
                wall=wall, losses=losses,
                # the simulator is a single sequential worker
                workers=getattr(ex, "num_workers", 1),
                bubble=stats.bubble_fraction() if stats else None,
                transport=stats.transport_fraction() if stats else None,
                boundary_stall=stats.boundary_stall_fraction() if stats else None,
            )
        finally:
            if hasattr(ex, "close"):
                ex.close()
    micro = steps * n
    sim_tput = micro / results["simulator"]["wall"]
    for label, r in results.items():
        tput = micro / r["wall"]
        extra = ""
        if r["backend"] != "simulator":
            extra = (f"  workers={r['workers']}  speedup={tput / sim_tput:.2f}x  "
                     f"bubble={r['bubble']:.3f}  transport={r['transport']:.1%}"
                     f"  boundary-stall={r['boundary_stall']:.3f}")
        print_row(label, tput, r["wall"], extra)
        rows.append(make_row(
            workload="translation", backend=r["backend"], overlap=r["overlap"],
            microbatches_per_sec=tput, speedup_vs_simulator=tput / sim_tput,
            bubble_fraction=r["bubble"], transport_fraction=r["transport"],
            boundary_stall_fraction=r["boundary_stall"], workers=r["workers"],
            equivalent=r["losses"] == results["simulator"]["losses"],
        ))
    equivalent = all(
        r["losses"] == results["simulator"]["losses"] for r in results.values()
    )
    print(f"  loss equivalence (bitwise)  : {'OK' if equivalent else 'MISMATCH'}"
          f"  (simulator == every concurrent row)")
    return equivalent


def measure_partition_balance(quick: bool, method: str, rows: list) -> bool:
    """Even vs auto (cost-balanced) partitioning on a deliberately skewed
    MLP: two wide layers among narrow ones, so the even-by-unit-count rule
    piles the expensive matmuls onto a minority of stages.

    Reports, per mode: the plan's *predicted* max/mean stage-cost imbalance,
    the *measured* max/mean per-worker busy-time imbalance from the thread
    runtime's own accounting, and throughput.  Returns the verdict that
    ``auto`` reduced the measured imbalance (recorded in the JSON rows the
    committed BENCH_runtime.json tracks).
    """
    wide = 256 if quick else 768
    narrow = 32 if quick else 64
    # Both wide matmuls lead, so the even-by-unit-count rule piles ~90% of
    # the flops onto stage 0 while the cost-balanced split separates them.
    dims = [narrow, wide, narrow, narrow, narrow, narrow, 10]
    p = 3
    n = 8
    batch = n * (8 if quick else 48)
    steps = 3 if quick else 10
    warmup = 1
    rng = np.random.default_rng(0)
    x = rng.normal(size=(batch, narrow))
    y = rng.integers(0, 10, size=batch)

    print(f"\npartition balance: skewed MLP dims={dims} P={p} N={n} steps={steps}")
    analytic = Partitioner("auto").plan(MLP(dims, np.random.default_rng(11)), p)
    results = {}
    for mode in ("even", "auto"):
        model = MLP(dims, np.random.default_rng(11))
        plan = Partitioner(mode).plan(model, p)
        # Score both bound sets under the same analytic costs — the even
        # plan records uniform costs by construction, which would make its
        # own imbalance() read a meaningless 1.0.
        predicted = plan.imbalance(analytic.unit_costs)
        stages = plan.stages(model)
        opt = SGD(param_groups_from_stages(stages), lr=0.01, momentum=0.9)
        sim_model = MLP(dims, np.random.default_rng(11))
        sim_stages = plan.stages(sim_model)
        sim = PipelineExecutor(
            sim_model, CrossEntropyLoss(),
            SGD(param_groups_from_stages(sim_stages), lr=0.01, momentum=0.9),
            sim_stages, n, method, partition_plan=plan,
        )
        rt = AsyncPipelineRuntime(
            model, CrossEntropyLoss(), opt, stages, n, method,
            partition_plan=plan,
        )
        try:
            _, sim_losses = measure(sim, x, y, steps, warmup)
            wall, losses = measure(rt, x, y, steps, warmup)
            busy = rt.stats.total_busy
            measured = max(busy) / (sum(busy) / len(busy)) if sum(busy) > 0 else 1.0
            results[mode] = dict(
                wall=wall,
                predicted=predicted,
                measured=measured,
                equivalent=losses == sim_losses,
            )
        finally:
            rt.close()
    micro = steps * n
    for mode, r in results.items():
        tput = micro / r["wall"]
        print(
            f"  {mode:<16s}: {tput:9.1f} microbatches/sec  "
            f"imbalance predicted={r['predicted']:.3f} "
            f"measured={r['measured']:.3f}  "
            f"equivalent={'OK' if r['equivalent'] else 'MISMATCH'}"
        )
        rows.append(make_row(
            workload="skewed-mlp", backend="thread", overlap=True,
            partition=mode,
            microbatches_per_sec=tput,
            imbalance_predicted=r["predicted"],
            imbalance_measured=r["measured"],
            workers=p,
            equivalent=r["equivalent"],
        ))
    improved = results["auto"]["measured"] <= results["even"]["measured"]
    print(
        f"  auto vs even (measured max/mean stage time): "
        f"{results['even']['measured']:.3f} -> {results['auto']['measured']:.3f}  "
        f"{'OK' if improved else 'WORSE'}"
    )
    equivalent = all(r["equivalent"] for r in results.values())
    if not equivalent:
        print("ERROR: partition-balance rows diverged from the simulator",
              file=sys.stderr)
    cores = os.cpu_count() or 1
    if not improved and (quick or cores < p):
        # Quick (CI smoke) sizes are overhead-dominated, and with fewer
        # cores than workers the stages time-slice one core, so per-worker
        # busy time stops reflecting the partition at all.  The rows still
        # land in the JSON trajectory; only a full-size run on a host that
        # can actually express the balance gates on the improvement.
        print(f"  (advisory only: quick={quick}, cores={cores} < workers={p} "
              "— not gating)")
        improved = True
    return improved and equivalent


def measure_hybrid(quick: bool, method: str, rows: list) -> bool:
    """Hybrid data × pipeline rows: aggregate samples/sec vs replica count.

    Each replica trains on its own 1/R shard of every minibatch, so the
    per-replica shard is held constant and the minibatch grows with R
    (weak scaling): aggregate samples/sec should approach R× the R=1
    baseline on a host with >= R·P cores, and stays ~1× on a single core
    by physics.  The R=1 row *is* the single-pipeline baseline; every row
    is checked bit-for-bit against the sequential simulator run at the
    same replica count (which models replica staleness exactly — the fold
    adds no weight delay).  Returns the equivalence verdict; throughput is
    trajectory data, never a gate.
    """
    p = 4
    n = 8
    width = 64 if quick else 256
    shard = n * (8 if quick else 48)  # per-replica minibatch
    steps = 2 if quick else 8
    warmup = 1
    dims = [width] * p + [10]
    replica_counts = (1, 2)

    print(f"\nhybrid data × pipeline: MLP P={p} N={n} width={width} "
          f"shard={shard}/replica steps={steps} "
          f"replicas={'/'.join(str(r) for r in replica_counts)}")
    results = {}
    for r in replica_counts:
        batch = shard * r
        rng = np.random.default_rng(0)
        x = rng.normal(size=(batch, width))
        y = rng.integers(0, 10, size=batch)
        _, sim = build_backend(
            PipelineExecutor, dims=dims, num_stages=p, num_microbatches=n,
            method=method, seed=42, num_replicas=r,
        )
        sim_wall, sim_losses = measure(sim, x, y, steps, warmup)
        _, rt = build_backend(
            AsyncPipelineRuntime, dims=dims, num_stages=p, num_microbatches=n,
            method=method, seed=42, num_replicas=r,
        )
        try:
            wall, losses = measure(rt, x, y, steps, warmup)
            results[r] = dict(
                wall=wall, sim_wall=sim_wall,
                samples=batch * steps,
                workers=rt.num_workers * r,
                bubble=rt.stats.bubble_fraction(),
                boundary_stall=rt.stats.boundary_stall_fraction(),
                equivalent=losses == sim_losses,
            )
        finally:
            rt.close()

    base = results[replica_counts[0]]
    base_sps = base["samples"] / base["wall"]
    for r, res in results.items():
        sps = res["samples"] / res["wall"]
        sim_sps = res["samples"] / res["sim_wall"]
        print(f"  R={r:<14d}: {sps:9.1f} samples/sec  ({res['wall']:.3f}s)"
              f"  workers={res['workers']}  aggregate={sps / base_sps:.2f}x"
              f"  vs-sim={sps / sim_sps:.2f}x"
              f"  equivalent={'OK' if res['equivalent'] else 'MISMATCH'}")
        rows.append(make_row(
            workload="mlp-hybrid", backend="thread", overlap=True,
            replicas=r, samples_per_sec=sps,
            microbatches_per_sec=steps * n * r / res["wall"],
            speedup_vs_simulator=sps / sim_sps,
            bubble_fraction=res["bubble"],
            boundary_stall_fraction=res["boundary_stall"],
            workers=res["workers"],
            equivalent=res["equivalent"],
        ))
    equivalent = all(res["equivalent"] for res in results.values())
    print(f"  loss equivalence (bitwise)  : {'OK' if equivalent else 'MISMATCH'}"
          f"  (simulator == thread group at every R)")
    return equivalent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: tiny sizes")
    parser.add_argument("--stages", type=int, default=4)
    parser.add_argument("--microbatches", type=int, default=8)
    parser.add_argument("--width", type=int, default=None, help="hidden width")
    parser.add_argument("--batch", type=int, default=None, help="minibatch size")
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--method", choices=["gpipe", "pipedream", "pipemare"], default="pipemare"
    )
    parser.add_argument(
        "--overlap", choices=["on", "off", "both"], default="both",
        help="which boundary modes to measure for the concurrent backends "
        "(default both: the barrier baseline and the overlapped boundary)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write every measured row as JSON (machine-readable perf "
        "trajectory; see BENCH_runtime.json)",
    )
    parser.add_argument(
        "--skip-translation", action="store_true",
        help="MLP rows only (skip the two-stream Transformer section)",
    )
    parser.add_argument(
        "--skip-balance", action="store_true",
        help="skip the even-vs-auto partition balance section",
    )
    parser.add_argument(
        "--skip-hybrid", action="store_true",
        help="skip the hybrid data × pipeline (replica scaling) section",
    )
    args = parser.parse_args(argv)

    p, n = args.stages, args.microbatches
    width = args.width or (64 if args.quick else 512)
    batch = args.batch or (n * (8 if args.quick else 48))
    steps = args.steps or (2 if args.quick else 10)
    warmup = 1 if args.quick else 2
    dims = [width] * p + [10]  # p Linear layers -> p single-layer stages

    rng = np.random.default_rng(0)
    x = rng.normal(size=(batch, width))
    y = rng.integers(0, 10, size=batch)

    print(f"runtime throughput: method={args.method} P={p} N={n} "
          f"width={width} batch={batch} steps={steps} "
          f"cores={os.cpu_count()} (BLAS pinned to 1 thread)")

    rows: list[dict] = []
    _, sim = build_backend(
        PipelineExecutor, dims=dims, num_stages=p, num_microbatches=n,
        method=args.method, seed=42,
    )
    sim_wall, sim_losses = measure(sim, x, y, steps, warmup)

    concurrent = {}
    for backend, overlap_flag in concurrent_variants(args.overlap):
        for fuse in (True, False):
            _, rt = build_backend(
                AsyncPipelineRuntime, dims=dims, num_stages=p, num_microbatches=n,
                method=args.method, seed=42, backend=backend,
                overlap_boundary=overlap_flag, fuse_waves=fuse,
            )
            label = row_label(backend, overlap_flag) + ("" if fuse else "/nofuse")
            try:
                wall, losses = measure(rt, x, y, steps, warmup)
                concurrent[label] = dict(
                    backend=backend,
                    overlap=overlap_flag,
                    fuse=fuse,
                    wall=wall,
                    losses=losses,
                    bubble=rt.stats.bubble_fraction(),
                    transport=rt.stats.transport_fraction(),
                    boundary_stall=rt.stats.boundary_stall_fraction(),
                    commands=rt.stats.commands_per_step(),
                    workers=rt.num_workers,
                )
            finally:
                rt.close()

    equivalent = all(sim_losses == c["losses"] for c in concurrent.values())
    micro = steps * n
    sim_tput = micro / sim_wall
    workers = next(iter(concurrent.values()))["workers"]
    sched = schedule_speedup(
        "gpipe" if args.method == "gpipe" else args.method, workers, n
    )
    gpipe_bubble = (p - 1) / (n + p - 1)

    print_row("simulator", sim_tput, sim_wall)
    rows.append(make_row(
        workload="mlp", backend="simulator", overlap=None,
        microbatches_per_sec=sim_tput, speedup_vs_simulator=1.0,
        workers=1, equivalent=True,
    ))
    for label, c in concurrent.items():
        tput = micro / c["wall"]
        print_row(
            label, tput, c["wall"],
            f"  workers={c['workers']}  speedup={tput / sim_tput:.2f}x  "
            f"bubble={c['bubble']:.3f}  transport={c['transport']:.1%}  "
            f"boundary-stall={c['boundary_stall']:.3f}  "
            f"commands/step={c['commands']:.0f}",
        )
        rows.append(make_row(
            workload="mlp" if c["fuse"] else "mlp-nofuse",
            backend=c["backend"], overlap=c["overlap"],
            microbatches_per_sec=tput, speedup_vs_simulator=tput / sim_tput,
            bubble_fraction=c["bubble"], transport_fraction=c["transport"],
            boundary_stall_fraction=c["boundary_stall"], workers=c["workers"],
            commands_per_step=c["commands"],
            equivalent=sim_losses == c["losses"],
        ))
    fused_cmds = [c["commands"] for c in concurrent.values() if c["fuse"]]
    unfused_cmds = [c["commands"] for c in concurrent.values() if not c["fuse"]]
    if fused_cmds and unfused_cmds:
        print(f"  wave-fusion command drop    : {max(unfused_cmds):.0f} -> "
              f"{max(fused_cmds):.0f} commands/step "
              f"({max(unfused_cmds) / max(fused_cmds):.1f}x fewer hand-offs)")
    print(f"  schedule-limited speedup    : {sched:.2f}x  "
          f"(wall-clock ceiling with >= {workers} cores)")
    print(f"  gpipe closed-form bubble    : {gpipe_bubble:.3f}  ((P-1)/(N+P-1))")
    print(f"  loss equivalence (bitwise)  : {'OK' if equivalent else 'MISMATCH'}"
          f"  (simulator == every concurrent row)")

    translation_ok = True
    if not args.skip_translation:
        translation_ok = measure_translation(args.quick, args.method, args.overlap, rows)

    balance_ok = True
    if not args.skip_balance:
        balance_ok = measure_partition_balance(args.quick, args.method, rows)

    hybrid_ok = True
    if not args.skip_hybrid:
        hybrid_ok = measure_hybrid(args.quick, args.method, rows)

    if args.json:
        payload = dict(
            config=dict(
                method=args.method, stages=p, microbatches=n, width=width,
                batch=batch, steps=steps, quick=args.quick,
                cores=os.cpu_count(),
            ),
            rows=rows,
        )
        schema_errors = validate_payload(payload)
        if schema_errors:
            for err in schema_errors:
                print(f"ERROR: bench JSON schema violation: {err}", file=sys.stderr)
            return 1
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {len(rows)} rows to {args.json}")

    if not equivalent or not translation_ok or not hybrid_ok:
        print("ERROR: backends diverged", file=sys.stderr)
        return 1
    if not balance_ok:
        print("ERROR: auto partition did not improve the skewed-model "
              "imbalance (or diverged)", file=sys.stderr)
        return 1
    if sched < 2.0 and p >= 4 and n >= 8:
        print("ERROR: schedule speedup below 2x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
