"""Tables 6–9 — hyperparameter records: the paper's recipes and grids next
to our scaled equivalents, plus a live mini-sweep over the T2 decay grid
(Table 8's CIFAR row) to confirm the same optimum ordering."""

from repro.experiments import make_image_workload
from repro.experiments.configs import (
    PAPER_STAGE_COUNTS,
    TABLE6_RESNET,
    TABLE7_TRANSFORMER,
    TABLE8_GRIDS,
    TABLE9_TRANSFER,
)
from repro.experiments.sensitivity import sweep_decay

from conftest import print_banner


def test_tables6_to_9_records(run_once):
    def build():
        return {
            "t6": TABLE6_RESNET,
            "t7": TABLE7_TRANSFORMER,
            "t8": TABLE8_GRIDS,
            "t9": TABLE9_TRANSFER,
            "stages": PAPER_STAGE_COUNTS,
        }

    records = run_once(build)
    print_banner("Tables 6-9 — paper hyperparameter records")
    for key, recipe in records["t6"].items():
        print(f"[T6:{key}] {recipe.task}: lr={recipe.lr}, {recipe.schedule}")
    for key, recipe in records["t7"].items():
        print(f"[T7:{key}] {recipe.task}: lr={recipe.lr}, micro={recipe.microbatch}")
    for task, grids in records["t8"].items():
        print(f"[T8:{task}] " + ", ".join(
            f"{k}: grid={v['grid']} optimal={v['optimal']}" for k, v in grids.items()
        ))
    print(f"[T9] {records['t9']}")
    print(f"[stages] {records['stages']}")

    assert records["t6"]["cifar10"].lr == 0.01
    assert records["t8"]["cifar10"]["decay"]["optimal"] == 0.5
    assert records["stages"]["resnet50"] == 107


def test_table8_decay_grid_live(run_once):
    """Replay the Table 8 CIFAR decay grid {0.1, 0.5, 0.9} at our scale:
    0.5 must be (near-)optimal, as the paper found."""
    workload = make_image_workload("cifar")
    results = run_once(sweep_decay, workload, [0.1, 0.5, 0.9], epochs=14)
    print_banner("Table 8 (live) — decay grid on the image task")
    best = {}
    for d, r in results.items():
        best[d] = r.best_metric
        print(f"D={d}: best={r.best_metric:.1f}")
    assert best[0.5] >= max(best.values()) - 2.0
