#!/usr/bin/env python
"""Gate a fresh bench_runtime_throughput.py --json run against a committed
baseline.

The CI perf-smoke lane regenerates the quick benchmark and fails the build
when the thread backend's ``speedup_vs_simulator`` drops more than
``--tolerance`` (default 10%) below the committed quick baseline on any
matching row.  Speedups are dimensionless (concurrent wall over simulator
wall measured in the same run), so the comparison survives runner-speed
differences; core-count differences only help the fresh side.

Rows are matched on (workload, backend, overlap, partition, replicas) —
fields are read tolerantly, so baselines written before a key existed
(e.g. ``replicas``) still match under its default.  Only thread rows gate
by default — process rows on shared CI runners are too noisy to block on —
but every matched row is reported.  Both files are validated against
``bench_schema.json`` first, so a schema drift fails loudly here too.

A fresh row with no baseline counterpart is *skipped with a warning*, not
an error: that is exactly what happens on the first CI run after a new
bench section lands, before anyone re-runs ``--write-baseline``.  If *no*
row matched but every fresh row was warned about, the check exits 0 with a
clear "nothing to gate yet" message instead of crashing the lane; a
matched-row regression still fails as before.

Quick-size runs on shared single-core runners are noisy, so the gate
compares two deliberately asymmetric statistics:

* ``--fresh`` accepts several JSON files (CI runs the bench a few times)
  and each row gates on its **best** fresh speedup — the least
  contended sample this runner produced;
* the committed baseline holds each row's **floor** (per-row minimum over
  several runs, written with ``--write-baseline``) — the worst speedup a
  healthy build has been observed to produce.

A best-of-N that still lands >10% below the historical floor is a real
regression, not scheduler noise.

Usage:
    python benchmarks/check_perf_regression.py \
        --fresh run1.json [run2.json ...] \
        --baseline benchmarks/BENCH_runtime_quick.json [--tolerance 0.10]
    python benchmarks/check_perf_regression.py \
        --fresh run1.json run2.json ... --write-baseline out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_runtime_throughput import validate_payload  # noqa: E402


def row_key(row: dict) -> tuple:
    # Tolerant reads: older committed baselines predate some keys (the
    # schema keeps them optional for exactly that reason), so missing
    # fields match under their defaults instead of raising KeyError.
    return (
        row.get("workload"),
        row.get("backend"),
        row.get("overlap"),
        row.get("partition"),
        row.get("replicas", 1),
    )


def load(path: str) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    errors = validate_payload(payload)
    if errors:
        for err in errors:
            print(f"ERROR: {path}: schema violation: {err}", file=sys.stderr)
        raise SystemExit(1)
    return payload


def _merge(runs: list[dict], better) -> dict:
    merged = dict(runs[0], rows=[dict(r) for r in runs[0]["rows"]])
    by_key = {row_key(r): r for r in merged["rows"]}
    for run in runs[1:]:
        for row in run["rows"]:
            kept = by_key.get(row_key(row))
            if kept is None:
                merged["rows"].append(dict(row))
                by_key[row_key(row)] = merged["rows"][-1]
                continue
            speedup = row["speedup_vs_simulator"]
            if speedup is not None and (
                kept["speedup_vs_simulator"] is None
                or better(speedup, kept["speedup_vs_simulator"])
            ):
                kept.update(row)
    return merged


def merge_best(runs: list[dict]) -> dict:
    """Per-row best ``speedup_vs_simulator`` — the fresh-side statistic."""
    return _merge(runs, lambda new, old: new > old)


def merge_floor(runs: list[dict]) -> dict:
    """Per-row minimum ``speedup_vs_simulator`` — the committed-baseline
    statistic (worst speedup a healthy build produced)."""
    return _merge(runs, lambda new, old: new < old)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", required=True, nargs="+",
        help="JSON file(s) from this run; rows gate on their best speedup",
    )
    parser.add_argument(
        "--baseline", help="committed baseline JSON (floor statistic)"
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH",
        help="instead of gating, write the per-row floor of the --fresh "
        "runs as a new committed baseline",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional speedup drop before failing (default 0.10)",
    )
    parser.add_argument(
        "--gate-backends", default="thread",
        help="comma-separated backends that gate (others are advisory)",
    )
    args = parser.parse_args(argv)

    runs = [load(path) for path in args.fresh]
    if args.write_baseline:
        floor = merge_floor(runs)
        with open(args.write_baseline, "w") as fh:
            json.dump(floor, fh, indent=2)
            fh.write("\n")
        print(f"wrote floor of {len(runs)} runs to {args.write_baseline}")
        return 0
    if not args.baseline:
        parser.error("--baseline is required unless --write-baseline is used")
    baseline = load(args.baseline)
    for path, run in zip(args.fresh, runs):
        if run["config"]["quick"] != baseline["config"]["quick"]:
            print(
                f"ERROR: quick-mode mismatch between {path} "
                f"({run['config']['quick']}) and baseline "
                f"({baseline['config']['quick']}) — sizes are not comparable",
                file=sys.stderr,
            )
            return 1
    fresh = merge_best(runs)

    gate = set(args.gate_backends.split(","))
    base_rows = {row_key(r): r for r in baseline["rows"]}
    failures = []
    matched = 0
    unmatched = 0
    for row in fresh["rows"]:
        label = "/".join(str(k) for k in row_key(row) if k is not None)
        ref = base_rows.get(row_key(row))
        if ref is None:
            # New bench rows land before anyone refreshes the committed
            # floor — warn and move on rather than crashing the lane.
            unmatched += 1
            print(
                f"WARNING: {label}: no baseline row — skipping "
                "(re-run --write-baseline to start gating it)",
                file=sys.stderr,
            )
            continue
        speedup = row.get("speedup_vs_simulator")
        ref_speedup = ref.get("speedup_vs_simulator")
        if speedup is None or ref_speedup is None or ref_speedup <= 0:
            continue
        matched += 1
        drop = 1.0 - speedup / ref_speedup
        gating = row.get("backend") in gate
        verdict = "OK"
        if drop > args.tolerance:
            verdict = "REGRESSED" if gating else "regressed (advisory)"
            if gating:
                failures.append((row_key(row), ref_speedup, speedup, drop))
        print(
            f"  {label:<32s} baseline={ref_speedup:6.3f}x  "
            f"fresh={speedup:6.3f}x  drop={drop:+7.1%}  {verdict}"
        )
    if matched == 0:
        if unmatched > 0:
            # Every fresh row is new to the baseline (fresh bench section,
            # stale committed floor): nothing to gate yet is not a failure.
            print(
                f"WARNING: nothing to gate yet — all {unmatched} fresh "
                "row(s) are missing from the baseline (see warnings above); "
                "refresh it with --write-baseline to arm the gate",
                file=sys.stderr,
            )
            return 0
        print("ERROR: no comparable rows between fresh run and baseline",
              file=sys.stderr)
        return 1
    if failures:
        for key, ref_speedup, speedup, drop in failures:
            print(
                f"ERROR: perf regression on {key}: speedup_vs_simulator "
                f"{ref_speedup:.3f}x -> {speedup:.3f}x "
                f"({drop:.1%} > {args.tolerance:.0%} tolerance)",
                file=sys.stderr,
            )
        return 1
    print(f"perf check passed: {matched} rows within {args.tolerance:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
