#!/usr/bin/env python
"""Gate a fresh bench_runtime_throughput.py --json run against a committed
baseline.

The CI perf-smoke lane regenerates the quick benchmark and fails the build
when the thread backend's ``speedup_vs_simulator`` drops more than
``--tolerance`` (default 10%) below the committed quick baseline on any
matching row.  Speedups are dimensionless (concurrent wall over simulator
wall measured in the same run), so the comparison survives runner-speed
differences; core-count differences only help the fresh side.

Rows are matched on (workload, backend, overlap, partition, replicas) —
fields are read tolerantly, so baselines written before a key existed
(e.g. ``replicas``) still match under its default.  Only thread rows gate
by default — process rows on shared CI runners are too noisy to block on —
but every matched row is reported.  Both files are validated against
``bench_schema.json`` first, so a schema drift fails loudly here too.

A fresh row with no baseline counterpart is *skipped with a warning*, not
an error: that is exactly what happens on the first CI run after a new
bench section lands, before anyone re-runs ``--write-baseline``.  If *no*
row matched but every fresh row was warned about, the check exits 0 with a
clear "nothing to gate yet" message instead of crashing the lane; a
matched-row regression still fails as before.

Quick-size runs on shared single-core runners are noisy, so the gate
compares two deliberately asymmetric statistics:

* ``--fresh`` accepts several JSON files (CI runs the bench a few times)
  and each row gates on its **best** fresh speedup — the least
  contended sample this runner produced;
* the committed baseline holds each row's **floor** (per-row minimum over
  several runs, written with ``--write-baseline``) — the worst speedup a
  healthy build has been observed to produce.

A best-of-N that still lands >10% below the historical floor is a real
regression, not scheduler noise.

Independently of the committed baseline, the check also gates **wave
fusion** inside the fresh runs themselves: every concurrent MLP
configuration appears twice (``workload="mlp"`` fused, ``"mlp-nofuse"``
per-wave reference) measured back-to-back on the same runner, and a fused
row more than ``--tolerance`` slower in ``microbatches_per_sec`` than its
unfused twin fails the lane for gating backends — a runner-independent
comparison, so it needs no baseline at all.  Like the partition-balance
verdict in the bench itself, the fusion gate is advisory on hosts with
fewer cores than workers, where thread wall clock is scheduler-noise
dominated.

Usage:
    python benchmarks/check_perf_regression.py \
        --fresh run1.json [run2.json ...] \
        --baseline benchmarks/BENCH_runtime_quick.json [--tolerance 0.10]
    python benchmarks/check_perf_regression.py \
        --fresh run1.json run2.json ... --write-baseline out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_runtime_throughput import validate_payload  # noqa: E402


def row_key(row: dict) -> tuple:
    # Tolerant reads: older committed baselines predate some keys (the
    # schema keeps them optional for exactly that reason), so missing
    # fields match under their defaults instead of raising KeyError.
    return (
        row.get("workload"),
        row.get("backend"),
        row.get("overlap"),
        row.get("partition"),
        row.get("replicas", 1),
    )


def load(path: str) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    errors = validate_payload(payload)
    if errors:
        for err in errors:
            print(f"ERROR: {path}: schema violation: {err}", file=sys.stderr)
        raise SystemExit(1)
    return payload


def _merge(runs: list[dict], better) -> dict:
    merged = dict(runs[0], rows=[dict(r) for r in runs[0]["rows"]])
    by_key = {row_key(r): r for r in merged["rows"]}
    for run in runs[1:]:
        for row in run["rows"]:
            kept = by_key.get(row_key(row))
            if kept is None:
                merged["rows"].append(dict(row))
                by_key[row_key(row)] = merged["rows"][-1]
                continue
            speedup = row["speedup_vs_simulator"]
            if speedup is not None and (
                kept["speedup_vs_simulator"] is None
                or better(speedup, kept["speedup_vs_simulator"])
            ):
                kept.update(row)
    return merged


def merge_best(runs: list[dict]) -> dict:
    """Per-row best ``speedup_vs_simulator`` — the fresh-side statistic."""
    return _merge(runs, lambda new, old: new > old)


def merge_floor(runs: list[dict]) -> dict:
    """Per-row minimum ``speedup_vs_simulator`` — the committed-baseline
    statistic (worst speedup a healthy build produced)."""
    return _merge(runs, lambda new, old: new < old)


def check_fusion(fresh: dict, tolerance: float, gate: set) -> list[str]:
    """Fused-vs-unfused gate, *within* the merged fresh runs.

    The bench emits every concurrent MLP configuration twice — compiled
    fused command blocks (``workload="mlp"``) and the per-wave reference
    (``workload="mlp-nofuse"``) — measured back-to-back in the same
    process on the same runner, so their ``microbatches_per_sec`` ratio is
    runner-independent in a way absolute numbers and even cross-run
    speedups are not.  Fusion exists to *remove* scheduler hand-off cost:
    a fused row more than ``tolerance`` slower than its own unfused twin
    means the compiled path itself regressed, and fails the lane for
    gating backends.  Returns the failure messages (empty = pass).

    On a host with fewer cores than workers the comparison is advisory
    only (same rule as the partition-balance section): the worker threads
    time-slice one core, so per-run wall clock is dominated by scheduler
    interleaving noise — interleaved A/B medians show fusion ahead, but a
    single quick sample can swing either way by far more than the
    tolerance."""
    cores = fresh.get("config", {}).get("cores") or 1
    unfused = {
        row_key(r)[1:]: r for r in fresh["rows"] if r.get("workload") == "mlp-nofuse"
    }
    failures: list[str] = []
    checked = 0
    for row in fresh["rows"]:
        if row.get("workload") != "mlp" or row.get("backend") == "simulator":
            continue
        twin = unfused.get(row_key(row)[1:])
        if twin is None:
            continue
        fused_mbs = row.get("microbatches_per_sec")
        unfused_mbs = twin.get("microbatches_per_sec")
        if not fused_mbs or not unfused_mbs:
            continue
        checked += 1
        drop = 1.0 - fused_mbs / unfused_mbs
        gating = row.get("backend") in gate and cores >= row.get("workers", 1)
        label = "/".join(str(k) for k in row_key(row)[1:] if k is not None)
        verdict = "OK"
        if drop > tolerance:
            if gating:
                verdict = "REGRESSED"
            elif cores < row.get("workers", 1):
                verdict = "regressed (advisory: cores < workers)"
            else:
                verdict = "regressed (advisory backend)"
            if gating:
                failures.append(
                    f"fused {label} is {drop:.1%} slower than its unfused "
                    f"twin ({fused_mbs:.1f} vs {unfused_mbs:.1f} mb/s, "
                    f"tolerance {tolerance:.0%})"
                )
        print(
            f"  fusion {label:<25s} unfused={unfused_mbs:8.1f}  "
            f"fused={fused_mbs:8.1f} mb/s  drop={drop:+7.1%}  {verdict}"
        )
    if checked:
        print(f"fusion check: {checked} fused/unfused pair(s) compared")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", required=True, nargs="+",
        help="JSON file(s) from this run; rows gate on their best speedup",
    )
    parser.add_argument(
        "--baseline", help="committed baseline JSON (floor statistic)"
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH",
        help="instead of gating, write the per-row floor of the --fresh "
        "runs as a new committed baseline",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional speedup drop before failing (default 0.10)",
    )
    parser.add_argument(
        "--gate-backends", default="thread",
        help="comma-separated backends that gate (others are advisory)",
    )
    args = parser.parse_args(argv)

    runs = [load(path) for path in args.fresh]
    if args.write_baseline:
        floor = merge_floor(runs)
        with open(args.write_baseline, "w") as fh:
            json.dump(floor, fh, indent=2)
            fh.write("\n")
        print(f"wrote floor of {len(runs)} runs to {args.write_baseline}")
        return 0
    if not args.baseline:
        parser.error("--baseline is required unless --write-baseline is used")
    baseline = load(args.baseline)
    for path, run in zip(args.fresh, runs):
        if run["config"]["quick"] != baseline["config"]["quick"]:
            print(
                f"ERROR: quick-mode mismatch between {path} "
                f"({run['config']['quick']}) and baseline "
                f"({baseline['config']['quick']}) — sizes are not comparable",
                file=sys.stderr,
            )
            return 1
    fresh = merge_best(runs)

    gate = set(args.gate_backends.split(","))
    fusion_failures = check_fusion(fresh, args.tolerance, gate)
    base_rows = {row_key(r): r for r in baseline["rows"]}
    failures = []
    matched = 0
    unmatched = 0
    for row in fresh["rows"]:
        label = "/".join(str(k) for k in row_key(row) if k is not None)
        ref = base_rows.get(row_key(row))
        if ref is None:
            # New bench rows land before anyone refreshes the committed
            # floor — warn and move on rather than crashing the lane.
            unmatched += 1
            print(
                f"WARNING: {label}: no baseline row — skipping "
                "(re-run --write-baseline to start gating it)",
                file=sys.stderr,
            )
            continue
        speedup = row.get("speedup_vs_simulator")
        ref_speedup = ref.get("speedup_vs_simulator")
        if speedup is None or ref_speedup is None or ref_speedup <= 0:
            continue
        matched += 1
        drop = 1.0 - speedup / ref_speedup
        gating = row.get("backend") in gate
        verdict = "OK"
        if drop > args.tolerance:
            verdict = "REGRESSED" if gating else "regressed (advisory)"
            if gating:
                failures.append((row_key(row), ref_speedup, speedup, drop))
        print(
            f"  {label:<32s} baseline={ref_speedup:6.3f}x  "
            f"fresh={speedup:6.3f}x  drop={drop:+7.1%}  {verdict}"
        )
    if fusion_failures:
        for msg in fusion_failures:
            print(f"ERROR: {msg}", file=sys.stderr)
        return 1
    if matched == 0:
        if unmatched > 0:
            # Every fresh row is new to the baseline (fresh bench section,
            # stale committed floor): nothing to gate yet is not a failure.
            print(
                f"WARNING: nothing to gate yet — all {unmatched} fresh "
                "row(s) are missing from the baseline (see warnings above); "
                "refresh it with --write-baseline to arm the gate",
                file=sys.stderr,
            )
            return 0
        print("ERROR: no comparable rows between fresh run and baseline",
              file=sys.stderr)
        return 1
    if failures:
        for key, ref_speedup, speedup, drop in failures:
            print(
                f"ERROR: perf regression on {key}: speedup_vs_simulator "
                f"{ref_speedup:.3f}x -> {speedup:.3f}x "
                f"({drop:.1%} > {args.tolerance:.0%} tolerance)",
                file=sys.stderr,
            )
        return 1
    print(f"perf check passed: {matched} rows within {args.tolerance:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
