"""Figure 2 — impact of pipeline-stage count on throughput, weight+optimizer
memory, best BLEU, and time-to-target for the Transformer stand-in.

Paper shapes: GPipe throughput degrades ∝ 1/P while the async methods stay
flat-per-stage (so normalized per-stage throughput grows linearly with P);
PipeDream memory grows ∝ P; PipeMare memory is flat; PipeMare quality stays
competitive over the sweep (at our model scale quality does fall off at the
very finest granularity — see EXPERIMENTS.md)."""

from repro.experiments import make_translation_workload
from repro.experiments.stage_sweep import run_stage_sweep

from conftest import print_banner, print_series


def test_figure2_stage_sweep_transformer(run_once):
    workload = make_translation_workload("iwslt")
    stage_counts = [6, 12, 23]
    sweep = run_once(
        run_stage_sweep, workload, stage_counts, epochs=18,
        methods=("gpipe", "pipedream", "pipemare"),
        train_methods=("pipemare",),
    )
    print_banner("Figure 2 — Transformer stage sweep")
    for attr in ("throughput", "memory"):
        for method in ("gpipe", "pipedream", "pipemare"):
            xs, ys = sweep.series(method, attr)
            print_series(f"{attr}/{method}", xs, ys, ".3g")
    xs, ys = sweep.series("pipemare", "best_metric")
    print_series("best BLEU/pipemare", xs, ys, ".1f")
    xs, yt = sweep.series("pipemare", "time_to_target")
    print_series("time-to-target/pipemare", xs, yt, ".1f")

    # hardware shapes
    _, gp_t = sweep.series("gpipe", "throughput")
    assert gp_t[0] > gp_t[-1]  # GPipe throughput falls with stages
    _, pd_m = sweep.series("pipedream", "memory")
    assert pd_m[-1] > pd_m[0]  # PipeDream memory grows with stages
    _, pm_m = sweep.series("pipemare", "memory")
    assert pm_m[0] == pm_m[-1]  # PipeMare memory flat
    # statistical: PipeMare trains to a usable BLEU at moderate granularity
    assert max(ys) > 10.0
