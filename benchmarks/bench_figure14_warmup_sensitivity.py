"""Figure 14 — sensitivity to the number of synchronous warmup epochs on the
translation task: more warmup improves quality (fewer epochs to target) but
costs throughput; the optimum balances the two."""

from repro.experiments import make_translation_workload
from repro.experiments.sensitivity import sweep_warmup_epochs

from conftest import print_banner


def test_figure14_warmup_sensitivity(run_once):
    workload = make_translation_workload("iwslt")
    grid = [0, 4, 10]
    # Finest granularity: warmup only matters where asynchrony actually
    # bites (at the 12-stage default the async run already trains fine).
    stages = workload.max_stages()
    out = run_once(
        sweep_warmup_epochs, workload, grid, epochs=20, num_stages=stages
    )
    print_banner(
        f"Figure 14 — BLEU / throughput / time-to-target vs warmup epochs, P={stages}"
    )
    for m, row in out.items():
        print(
            f"warmup={m:>2}: best={row['best']:.1f} tput={row['throughput']:.2f} "
            f"epochs_to_target={row['epochs_to_target']:.0f} "
            f"time_to_target={row['time_to_target']:.1f}"
        )

    # throughput decreases monotonically with warmup epochs
    assert out[0]["throughput"] > out[4]["throughput"] > out[10]["throughput"]
    # warmup improves achievable quality on the Transformer (paper's claim)
    assert out[4]["best"] > out[0]["best"]
