"""Figure 3(a) — increasing τ destabilises the quadratic model at fixed
α = 0.2, λ = 1 (τ = 10 diverges where τ ∈ {0, 5} converge)."""

import numpy as np

from repro.theory import simulate_delayed_sgd

from conftest import print_banner, print_series


def test_figure3a_quadratic_divergence(run_once):
    def build():
        out = {}
        for tau in (0, 5, 10):
            out[tau] = simulate_delayed_sgd(
                lam=1.0, alpha=0.2, tau=tau, steps=250,
                rng=np.random.default_rng(1),
            )
        return out

    trajs = run_once(build)
    print_banner("Figure 3(a) — loss vs iteration, alpha=0.2, lambda=1")
    for tau, t in trajs.items():
        xs = range(0, 251, 50)
        print_series(f"tau={tau}", xs, [t.losses[i] for i in xs], fmt=".3g")

    assert trajs[0].final_loss < 5
    assert trajs[5].final_loss < 5
    assert trajs[10].final_loss > 100  # divergence under way, as in the paper
