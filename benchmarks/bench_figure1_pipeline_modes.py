"""Figure 1 — the three pipelining modes, rendered from executable
schedules: throughput-poor (GPipe, bubbles), memory-hungry (PipeDream,
weight stashing), and PipeMare (bubble-free, single weight copy)."""

from repro.pipeline import costmodel
from repro.pipeline.schedule import build_schedule, bubble_fraction

from conftest import print_banner


def test_figure1_pipeline_modes(run_once):
    p, n = 3, 4

    def build():
        return {m: build_schedule(m, p, n, num_minibatches=2) for m in
                ("gpipe", "pipedream", "pipemare")}

    schedules = run_once(build)
    print_banner(f"Figure 1 — pipeline occupancy (P={p}, N={n}, 2 minibatches)")
    for method, sched in schedules.items():
        frac = bubble_fraction(sched)
        print(f"\n[{method}] bubble fraction = {frac:.3f}")
        print(sched.render(max_slots=40))

    # GPipe has bubbles; the async pipes are bubble-free in steady state.
    assert bubble_fraction(schedules["gpipe"]) > 0.2
    # bubble-free in steady state (the residual is the fill/drain window of
    # this short 2-minibatch trace)
    assert bubble_fraction(schedules["pipemare"], steady_state_only=True) < 0.35
    # and the bubble fraction matches the (P-1)/(N+P-1) closed form
    expect = (p - 1) / (n + p - 1)
    assert abs(bubble_fraction(schedules["gpipe"]) - expect) < 0.02
    # the memory-hungry mode is PipeDream: extra weight copies ∝ P/N
    assert costmodel.weight_memory("pipedream", 1, p, n) > costmodel.weight_memory(
        "pipemare", 1, p, n
    )
