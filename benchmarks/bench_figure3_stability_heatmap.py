"""Figure 3(b) — (α, τ) stability heatmap for pipeline-parallel SGD on the
cpusmall-like regression, with the Lemma 1 curve overlaid.  The empirical
divergence boundary must fall at slope α ∝ τ⁻¹."""

import numpy as np

from repro.experiments.stability_heatmap import boundary_slope_loglog, run_stability_heatmap

from conftest import print_banner


def test_figure3b_stability_heatmap(run_once):
    # τ up to 64: beyond that, divergence detection needs step counts ≫ 10τ
    # which the paper affords with T=10⁶ iterations but a CPU bench does not.
    result = run_once(
        run_stability_heatmap,
        alphas=2.0 ** np.arange(-14, -1),
        taus=4 ** np.arange(0, 4),  # 1..64
        steps=4000,
        num_samples=512,
    )
    print_banner("Figure 3(b) — divergence boundary vs Lemma 1 curve")
    print(f"largest curvature lambda = {result.curvature:.2f}")
    print(f"{'tau':>6} {'empirical boundary':>20} {'lemma1 alpha_max':>18}")
    for i, tau in enumerate(result.taus):
        b = result.divergence_boundary_alpha(i)
        print(f"{tau:>6.0f} {b:>20.6f} {result.lemma1_curve[i]:>18.6f}")
    slope = boundary_slope_loglog(result)
    print(f"log-log boundary slope = {slope:.3f}  (Lemma 1 predicts -1)")

    assert slope == np.clip(slope, -1.35, -0.65)
    # boundary sits at/above the lemma curve (the lemma uses the largest
    # curvature, so it is conservative for the minibatch problem)
    for i in range(len(result.taus)):
        assert result.divergence_boundary_alpha(i) >= result.lemma1_curve[i] * 0.4
