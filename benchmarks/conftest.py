"""Shared benchmark utilities.

Every benchmark regenerates one paper table or figure at CPU scale and
prints the paper-shaped rows/series (captured with ``pytest -s`` or in the
benchmark logs).  Quality numbers are qualitative reproductions — see
EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

import numpy as np
import pytest


def print_banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def print_series(label: str, xs, ys, fmt: str = ".2f") -> None:
    pts = "  ".join(f"{x}:{format(float(y), fmt)}" for x, y in zip(xs, ys))
    print(f"{label:<28} {pts}")


def curve(result, key: str = "eval_metric"):
    return result.history.series(key)


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
