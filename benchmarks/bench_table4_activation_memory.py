"""Table 4 — asymptotic activation memory with and without PipeMare
Recompute (P = L):

================== ================ ====================
mode               w/o recompute    w/ recompute
================== ================ ====================
GPipe              M·P·N            M·P·N^{1/2}
PipeMare/PipeDream M·P²             M·P^{3/2}
================== ================ ====================
"""

import numpy as np

from repro.pipeline import recompute

from conftest import print_banner


def test_table4_asymptotics(run_once):
    def build():
        out = {}
        for p, n in [(64, 16), (144, 16), (256, 16)]:
            t = recompute.table4_asymptotics(p, n)
            s_pm = recompute.optimal_segment_size(p)
            s_gp = recompute.optimal_segment_size(p, method="gpipe", num_microbatches=n)
            t["measured_pipemare_recompute"] = recompute.total_activation_memory(
                p, segment_size=s_pm
            )
            t["measured_gpipe_recompute"] = recompute.total_activation_memory(
                p, segment_size=s_gp, num_microbatches=n, method="gpipe"
            )
            t["measured_pipemare"] = recompute.total_activation_memory(p)
            out[(p, n)] = t
        return out

    table = run_once(build)
    print_banner("Table 4 — activation memory (units of M)")
    hdr = f"{'P':>5} {'N':>4} {'gpipe':>9} {'gpipe+r':>9} {'pm':>9} {'pm+r':>9} {'pm meas':>9} {'pm+r meas':>10}"
    print(hdr)
    for (p, n), t in table.items():
        print(
            f"{p:>5} {n:>4} {t['gpipe']:>9.0f} {t['gpipe_recompute']:>9.0f} "
            f"{t['pipemare']:>9.0f} {t['pipemare_recompute']:>9.0f} "
            f"{t['measured_pipemare']:>9.0f} {t['measured_pipemare_recompute']:>10.0f}"
        )

    # Exponent checks: quadrupling P multiplies PipeMare memory by 16 and
    # recompute memory by 8 (P^{3/2}).
    m64 = table[(64, 16)]["measured_pipemare"]
    m256 = table[(256, 16)]["measured_pipemare"]
    assert m256 / m64 == 16.0
    r64 = table[(64, 16)]["measured_pipemare_recompute"]
    r256 = table[(256, 16)]["measured_pipemare_recompute"]
    assert r256 / r64 == np.clip(r256 / r64, 6.5, 9.5)
    # GPipe with recompute scales like P·sqrt(N): flat in N exponent check
    g = table[(64, 16)]
    assert g["measured_gpipe_recompute"] < g["gpipe"]
