"""Figure 11 — the deep ResNet (ResNet152 stand-in, finest granularity):
T1 alone underperforms/destabilises while T1+T2 recovers toward the
synchronous curve — the paper's key evidence that T2 is necessary at depth."""

from repro.experiments import make_image_workload
from repro.experiments.divergence import run_deep_resnet_t2

from conftest import curve, print_banner, print_series


def test_figure11_deep_resnet_needs_t2(run_once):
    workload = make_image_workload("resnet152")
    stages = workload.max_stages()
    seeds = (0, 1)

    def build():
        return {
            seed: run_deep_resnet_t2(workload, epochs=12, seed=seed, num_stages=stages)
            for seed in seeds
        }

    per_seed = run_once(build)
    print_banner(f"Figure 11 — deep ResNet, P={stages}, seeds={seeds}")
    for seed, results in per_seed.items():
        for name, r in results.items():
            ys = curve(r)
            print_series(f"s{seed}/{name}", range(len(ys)), ys, ".1f")
            print(f"   best={r.best_metric:.1f} diverged={r.diverged}")

    # The paper's Figure 11 claim, at our scale: T1-only is *unstable* at
    # this depth (it diverges outright for some seeds), while T1+T2 never
    # diverges and does at least as well on average.
    assert all(res["sync"].best_metric > 90.0 for res in per_seed.values())
    assert any(res["t1"].diverged for res in per_seed.values())
    assert not any(res["t1+t2"].diverged for res in per_seed.values())
    mean_t1 = sum(res["t1"].best_metric for res in per_seed.values()) / len(seeds)
    mean_t1t2 = sum(res["t1+t2"].best_metric for res in per_seed.values()) / len(seeds)
    assert mean_t1t2 >= mean_t1
