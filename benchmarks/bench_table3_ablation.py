"""Table 3 — ablation of T1 / T2 / T1+T2 (+T3 for translation).

Paper shapes: on CIFAR, T1-only already matches sync accuracy and T1+T2 at
least matches T1; on IWSLT, T2-only scores ≈ 0 BLEU, T1 recovers slowly,
and adding T3 boosts both quality and time-to-target."""

from repro.experiments import make_image_workload, make_translation_workload
from repro.experiments.ablation import format_ablation_table, run_ablation

from conftest import print_banner


def test_table3_image_ablation(run_once):
    workload = make_image_workload("cifar")
    results = run_once(run_ablation, workload, epochs=16, include_t3=False)
    print_banner("Table 3 — CIFAR10 stand-in ablation")
    for line in format_ablation_table(workload, results):
        print(line)

    assert results["sync"].best_metric > 95.0
    # T1 must beat naive async at this (calibrated, unstable-for-naive) lr
    assert results["t1"].best_metric > results["naive"].best_metric
    # T1+T2 performs on par with T1 (within noise), as in the paper
    assert results["t1+t2"].best_metric > results["t1"].best_metric - 10.0


def test_table3_translation_ablation(run_once):
    workload = make_translation_workload("iwslt")
    # Finest granularity (one weight unit per stage), as in the paper's
    # 93-stage setup: this is where naive async and T2-only collapse.
    stages = workload.max_stages()
    results = run_once(
        run_ablation, workload, epochs=20, include_t3=True, warmup_epochs=4,
        num_stages=stages,
    )
    print_banner(f"Table 3 — IWSLT14 stand-in ablation, P={stages}")
    for line in format_ablation_table(workload, results):
        print(line)

    assert results["sync"].best_metric > 30.0
    # the paper's striking rows: naive and T2-only score ~0 BLEU
    assert results["naive"].best_metric < 5.0
    assert results["t2"].best_metric < 5.0
    # T1 makes training possible; T3 warmup gives a further boost
    assert results["t1"].best_metric > results["naive"].best_metric
    assert results["t1+t2+t3"].best_metric > results["t1+t2"].best_metric
