"""Figure 6 — per-stage activation footprint of PipeMare Recompute for the
paper's 16-stage / 4-segment example."""

import numpy as np

from repro.pipeline import recompute

from conftest import print_banner, print_series


def test_figure6_per_stage_activation_counts(run_once):
    p, s = 16, 4

    def build():
        return (
            recompute.per_stage_activation_counts(p),
            recompute.per_stage_activation_counts(p, segment_size=s),
        )

    without, with_r = run_once(build)
    print_banner("Figure 6 — cached activations per stage (16 stages, 4 segments)")
    print_series("w/o recompute", range(p), without, ".0f")
    print_series("w/  recompute", range(p), with_r, ".0f")
    print(f"totals: w/o={without.sum():.0f}  w/={with_r.sum():.0f} "
          f"(ratio {with_r.sum() / without.sum():.3f})")

    # Recompute strictly reduces the total, heads carry the input caches,
    # and within a segment the buffer requirement decays.
    assert with_r.sum() < without.sum()
    heads = recompute.segment_heads(p, s)
    for h in heads:
        assert with_r[h] == max(with_r[h : h + s])
        inner = with_r[h + 1 : h + s]
        assert all(a > b for a, b in zip(inner, inner[1:]))
    # later segments need less (2(P−i) head caching shrinks), as in the plot
    assert with_r[heads[0]] > with_r[heads[-1]]
