"""Figure 9 — the larger tasks (ImageNet / WMT17 stand-ins): PipeMare
approaches sync quality while PipeDream falls short (ImageNet) or fails
completely (WMT)."""

from repro.experiments import make_image_workload, make_translation_workload
from repro.experiments.end_to_end import run_end_to_end

from conftest import print_banner


def test_figure9_imagenet(run_once):
    workload = make_image_workload("imagenet")
    rows, results = run_once(
        run_end_to_end, workload, epochs=12,
        methods=("pipedream", "gpipe", "pipemare"),
    )
    print_banner("Figure 9 (a/b) — ImageNet stand-in")
    for r in rows:
        print(r.format())
    by = {r.method: r for r in rows}
    assert by["gpipe"].best_metric > 90.0
    assert by["pipemare"].best_metric > 70.0


def test_figure9_wmt(run_once):
    workload = make_translation_workload("wmt")
    # 24 stages: enough delay that PipeDream collapses (as in the paper's
    # 91-stage WMT run) while PipeMare's techniques keep learning.  At this
    # model scale the finest granularity (43) degrades every async method;
    # see EXPERIMENTS.md's asynchrony-tolerance scale note.
    rows, results = run_once(
        run_end_to_end, workload, epochs=20, warmup_epochs=4,
        methods=("pipedream", "gpipe", "pipemare"), num_stages=24,
    )
    print_banner("Figure 9 (c/d) — WMT17 stand-in (shared embeddings), P=24")
    for r in rows:
        print(r.format())
    by = {r.method: r for r in rows}
    # paper: PipeDream BLEU ≈ 0 on WMT
    assert by["pipedream"].best_metric < 5.0
    assert by["gpipe"].best_metric > 25.0
    # PipeMare clearly beats PipeDream at equal hardware cost with fewer
    # weight copies (the full BLEU recovery needs the paper's model scale)
    assert by["pipemare"].best_metric > 8.0
    assert by["pipemare"].best_metric > by["pipedream"].best_metric
