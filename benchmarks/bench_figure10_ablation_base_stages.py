"""Figure 10 — the Figure 4 ablation repeated at the base (1×) stage count
(107/93 in the paper; the workload defaults here)."""

from repro.core import PipeMareConfig
from repro.experiments import make_image_workload, make_translation_workload
from repro.experiments.ablation import run_ablation

from conftest import curve, print_banner, print_series


def test_figure10_image(run_once):
    workload = make_image_workload("cifar")
    variants = {
        "sync": None,
        "t1": PipeMareConfig.t1_only(workload.default_anneal_steps()),
        "t1+t2": workload.default_config(),
    }
    results = run_once(run_ablation, workload, epochs=14, variants=variants)
    print_banner("Figure 10 — ResNet ablation at base stage count")
    for name, r in results.items():
        ys = curve(r)
        print_series(name, range(len(ys)), ys, ".1f")
    assert results["t1"].best_metric > 60.0
    assert results["t1+t2"].best_metric > 60.0


def test_figure10_translation(run_once):
    workload = make_translation_workload("iwslt")
    variants = {
        "t1": PipeMareConfig.t1_only(workload.default_anneal_steps()),
        "t1+t2+t3": workload.default_config(warmup_epochs=4),
    }
    results = run_once(run_ablation, workload, epochs=18, variants=variants)
    print_banner("Figure 10 — Transformer ablation at base stage count")
    for name, r in results.items():
        ys = curve(r)
        print_series(name, range(len(ys)), ys, ".1f")
    assert results["t1+t2+t3"].best_metric > results["t1"].best_metric
