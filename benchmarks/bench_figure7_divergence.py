"""Figure 7 — anatomy of naive-async divergence on the ResNet stand-in:
forward delay alone can destabilise at large enough delay, and
forward-backward discrepancy exacerbates it (parameter-norm and accuracy
trajectories)."""

from repro.experiments import make_image_workload
from repro.experiments.divergence import run_divergence_anatomy

from conftest import curve, print_banner, print_series


def test_figure7_divergence_anatomy(run_once):
    workload = make_image_workload("cifar")
    results = run_once(
        run_divergence_anatomy, workload, epochs=10, deep_multiple=4
    )
    print_banner("Figure 7 — param norm / accuracy under async variants")
    for name, r in results.items():
        norms = r.history.series("param_norm")
        print_series(f"norm/{name}", range(len(norms)), norms, ".1f")
    for name, r in results.items():
        accs = curve(r)
        if accs:
            print_series(f"acc/{name}", range(len(accs)), accs, ".1f")

    sync = results["sync"]
    disc = results["discrepancy"]
    nodisc = results["no_discrepancy"]
    assert sync.best_metric > 95.0
    # discrepancy hurts relative to the same delay without discrepancy
    assert disc.best_metric < nodisc.best_metric
    # and the naive-async run is far from sync quality (stall or divergence)
    assert disc.best_metric < sync.best_metric - 10.0
