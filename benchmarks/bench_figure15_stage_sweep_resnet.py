"""Figure 15 — stage sweep for the ResNet/CIFAR10 stand-in (the image
counterpart of Figure 2)."""

from repro.experiments import make_image_workload
from repro.experiments.stage_sweep import run_stage_sweep

from conftest import print_banner, print_series


def test_figure15_stage_sweep_resnet(run_once):
    workload = make_image_workload("cifar")
    stage_counts = [5, 10, 21]
    sweep = run_once(
        run_stage_sweep, workload, stage_counts, epochs=12,
        methods=("gpipe", "pipedream", "pipemare"),
        train_methods=("pipemare",),
    )
    print_banner("Figure 15 — ResNet stage sweep")
    for method in ("gpipe", "pipedream", "pipemare"):
        xs, ys = sweep.series(method, "throughput")
        print_series(f"throughput/{method}", xs, ys, ".3f")
        xs, ys = sweep.series(method, "memory")
        print_series(f"memory/{method}", xs, ys, ".3g")
    xs, acc = sweep.series("pipemare", "best_metric")
    print_series("best acc/pipemare", xs, acc, ".1f")

    _, gp_t = sweep.series("gpipe", "throughput")
    _, pd_m = sweep.series("pipedream", "memory")
    _, pm_m = sweep.series("pipemare", "memory")
    assert gp_t[0] > gp_t[-1]
    assert pd_m[-1] > pd_m[0]
    assert pm_m[0] == pm_m[-1]
    # PipeMare reaches strong accuracy at least at the coarser granularities
    assert max(acc) > 85.0
