"""Table 5 — PipeMare Recompute activation-memory savings for the paper's
actual stage counts: 0.097 / 0.104 / 0.105 at P = 107 / 93 / 91."""

from repro.pipeline import recompute

from conftest import print_banner

PAPER_TABLE5 = {
    ("CIFAR10/ImageNet", 107): 0.097,
    ("IWSLT14", 93): 0.104,
    ("WMT17", 91): 0.105,
}


def test_table5_recompute_savings(run_once):
    def build():
        return {
            (task, p): recompute.recompute_savings_ratio(p)
            for (task, p) in PAPER_TABLE5
        }

    ratios = run_once(build)
    print_banner("Table 5 — activation memory with recompute (fraction of w/o)")
    print(f"{'task':<18} {'stages':>7} {'paper':>8} {'ours':>8}")
    for (task, p), paper_val in PAPER_TABLE5.items():
        ours = ratios[(task, p)]
        print(f"{task:<18} {p:>7} {paper_val:>8.3f} {ours:>8.3f}")
        assert abs(ours - paper_val) < 0.0015
