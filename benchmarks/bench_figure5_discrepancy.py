"""Figure 5 — (a) forward-backward delay discrepancy Δ destabilises the
quadratic model; (b) T2's correction shrinks the largest companion-matrix
eigenvalue back toward the no-discrepancy case."""

import numpy as np

from repro.theory import (
    char_poly_delayed_sgd,
    char_poly_discrepancy,
    char_poly_t2,
    simulate_discrepancy_sgd,
    spectral_radius,
    t2_gamma,
)

from conftest import print_banner, print_series


def test_figure5a_delta_divergence(run_once):
    def build():
        return {
            d: simulate_discrepancy_sgd(
                lam=1.0, alpha=0.05, tau_fwd=10, tau_bkwd=6, delta=d,
                steps=250, rng=np.random.default_rng(1),
            )
            for d in (0.0, 3.0, 5.0)
        }

    trajs = run_once(build)
    print_banner("Figure 5(a) — loss vs iteration, tau_f=10, tau_b=6, alpha=0.05")
    for d, t in trajs.items():
        xs = range(0, 251, 50)
        print_series(f"delta={d:g}", xs, [t.losses[i] for i in xs], fmt=".3g")
    assert trajs[0.0].final_loss < 5
    assert trajs[5.0].final_loss > 10 * trajs[0.0].final_loss


def test_figure5b_t2_shrinks_eigenvalue():
    tau_f, tau_b, lam, delta = 10, 6, 1.0, 5.0
    gamma = t2_gamma(tau_f, tau_b)
    alphas = np.geomspace(0.01, 1.0, 25)
    rho_disc = [spectral_radius(char_poly_discrepancy(tau_f, tau_b, a, lam, delta)) for a in alphas]
    rho_none = [spectral_radius(char_poly_delayed_sgd(tau_f, a, lam)) for a in alphas]
    rho_t2 = [spectral_radius(char_poly_t2(tau_f, tau_b, a, lam, delta, gamma)) for a in alphas]

    print_banner("Figure 5(b) — largest eigenvalue vs step size (D=0.135 regime)")
    idx = range(0, 25, 4)
    print_series("discrepancy, no corr", [f"{alphas[i]:.3f}" for i in idx], [rho_disc[i] for i in idx], ".4f")
    print_series("no discrepancy",       [f"{alphas[i]:.3f}" for i in idx], [rho_none[i] for i in idx], ".4f")
    print_series("T2 corrected",         [f"{alphas[i]:.3f}" for i in idx], [rho_t2[i] for i in idx], ".4f")

    # In the unstable band, T2's radius sits between no-correction and
    # no-discrepancy, i.e. the correction moves the spectrum toward Δ=0.
    band = [i for i, a in enumerate(alphas) if 0.05 <= a <= 0.3]
    assert all(rho_t2[i] <= rho_disc[i] + 1e-9 for i in band)
    assert np.mean([rho_disc[i] - rho_t2[i] for i in band]) > 0.005
