"""Figure 4 — incremental effect of T1, T1+T2, T1+T2+T3 at *doubled*
fine granularity (2× the weight-unit stage count is not possible, so we use
the finest granularity — one weight unit per stage — which plays the same
stress-test role at our scale)."""

from repro.experiments import make_image_workload, make_translation_workload
from repro.experiments.ablation import run_ablation
from repro.core import PipeMareConfig

from conftest import curve, print_banner, print_series


def test_figure4_image_curves(run_once):
    workload = make_image_workload("cifar")
    stages = workload.max_stages()  # finest granularity
    variants = {
        "sync": None,
        "t1": PipeMareConfig.t1_only(workload.default_anneal_steps()),
        "t1+t2": workload.default_config(),
    }
    results = run_once(
        run_ablation, workload, epochs=14, variants=variants, num_stages=stages
    )
    print_banner(f"Figure 4 (left) — ResNet test accuracy, P={stages}")
    for name, r in results.items():
        ys = curve(r)
        print_series(name, range(len(ys)), ys, ".1f")
    assert results["sync"].best_metric > 95.0
    assert results["t1+t2"].best_metric > 55.0  # async techniques keep it training


def test_figure4_translation_curves(run_once):
    workload = make_translation_workload("iwslt")
    stages = workload.max_stages()  # finest granularity, as in the left panel
    variants = {
        "sync": None,
        "t1": PipeMareConfig.t1_only(workload.default_anneal_steps()),
        "t1+t2": workload.default_config(),
        "t1+t2+t3": workload.default_config(warmup_epochs=4),
    }
    results = run_once(
        run_ablation, workload, epochs=20, variants=variants, num_stages=stages
    )
    print_banner(f"Figure 4 (right) — Transformer BLEU, P={stages}")
    for name, r in results.items():
        ys = curve(r)
        print_series(name, range(len(ys)), ys, ".1f")
    assert results["sync"].best_metric > 30.0
    # T3 gives the visible jump the paper reports on IWSLT
    assert results["t1+t2+t3"].best_metric > results["t1+t2"].best_metric
