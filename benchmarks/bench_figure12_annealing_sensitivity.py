"""Figure 12 — sensitivity to the number of annealing steps K: too small
reverts to unstable naive async before the base LR decays; too large wastes
the full-rate phase (and on the ResNet, overly long annealing hurts, as the
paper's 160-epoch point shows)."""

from repro.experiments import make_image_workload
from repro.experiments.sensitivity import sweep_anneal_steps

from conftest import print_banner


def test_figure12_anneal_sensitivity(run_once):
    workload = make_image_workload("cifar")
    first_phase = workload.lr_drop_epochs * workload.steps_per_epoch
    grid = [first_phase // 8, first_phase // 2, first_phase * 2]
    results = run_once(sweep_anneal_steps, workload, grid, epochs=16)
    print_banner("Figure 12 — accuracy vs annealing steps K")
    for k, r in results.items():
        print(f"K={k:>4}: best={r.best_metric:.1f} diverged={r.diverged}")

    best_by_k = {k: r.best_metric for k, r in results.items()}
    mid = first_phase // 2
    # the tuned middle value beats both extremes (inverted-U, Figure 12)
    assert best_by_k[mid] >= max(best_by_k[grid[0]], best_by_k[grid[-1]]) - 1.0
