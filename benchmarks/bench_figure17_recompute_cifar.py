"""Figure 17 — PipeMare Recompute on the image task: with T1+T2, training
with recompute stays stable and (at the paper's operating segment sizes)
reaches the same quality band as training without recompute.

Scale note: at our model size the *largest* segments (2 checkpoints ⇒
segments of ~P/2 stages, recompute delays comparable to the pipeline depth)
slow convergence visibly — the paper's 25M-parameter ResNet tolerates them.
The 2-checkpoint row is printed for completeness but the quality-band
assertion covers the ≥4-checkpoint configurations, whose segment sizes
bracket the optimal S ≈ √P."""

import numpy as np

from repro.experiments import make_image_workload
from repro.experiments.recompute_training import run_recompute_study

from conftest import curve, print_banner, print_series

SEEDS = (0, 1, 2)
GRID = [None, 2, 4, 7]


def test_figure17_recompute_image(run_once):
    workload = make_image_workload("cifar")

    def build():
        return {
            seed: run_recompute_study(
                workload, checkpoint_grid=GRID, epochs=14, seed=seed
            )
            for seed in SEEDS
        }

    per_seed = run_once(build)
    print_banner("Figure 17 — recompute checkpoints, image task (T1+T2)")
    means = {}
    for name in per_seed[SEEDS[0]]:
        bests = [per_seed[s][name].best_metric for s in SEEDS]
        means[name] = float(np.mean(bests))
        print(
            f"{name:<14} mean_best={means[name]:.1f} "
            f"per-seed={[f'{b:.1f}' for b in bests]}"
        )
    for s in SEEDS:
        ys = curve(per_seed[s]["no_recompute"])
        print_series(f"s{s}/no_recompute", range(len(ys)), ys, ".1f")

    # recompute never destabilises training once T2 is on
    for s in SEEDS:
        for name, r in per_seed[s].items():
            assert not r.diverged, f"seed {s} {name} diverged"
            assert r.best_metric > 40.0
    # at moderate segment sizes, recompute quality tracks no-recompute
    base = means["no_recompute"]
    assert means["4_ckpts"] > base - 20.0
    assert means["7_ckpts"] > base - 20.0
